"""Binary wire format for accumulator states, reports and engine envelopes.

Sharded aggregation only works if the intermediate objects -- the reports
clients upload and the sufficient-statistics accumulators servers keep --
can cross process and machine boundaries.  This module defines the single
container format both use:

``MAGIC | <u64 header length> | <JSON header> | <npy arrays, concatenated>``

The JSON header carries small metadata (state kind, protocol spec, report
counts, and -- for the exact summation accumulator -- arbitrary-precision
integer sums, which JSON represents losslessly).  Bulk numeric payloads are
written as standard ``.npy`` blocks in a declared order, so decoding never
needs pickle and the format is stable across Python/numpy versions.

Nested objects (e.g. the hierarchical accumulator's per-level oracle
accumulators) embed each child's packed bytes as a ``uint8`` array, which
keeps the format strictly compositional.

Two format versions coexist:

* **v1** (``REPROACC\\x01``) is the original layout used by every
  accumulator state and report.  :func:`pack_blob` keeps emitting it by
  default so all pre-engine payloads stay byte-for-byte identical.
* **v2** (``REPROACC\\x02``) is the *envelope* version introduced with the
  :mod:`repro.engine` façade: same physical layout, but the header is
  expected to carry envelope metadata (engine version, protocol spec,
  epoch keys).  :func:`unpack_blob` decodes both versions transparently;
  :func:`blob_version` reports which one a payload uses.

A third magic, ``REPROBAT\\x01``, frames *batches* of reports for network
transport (:func:`pack_report_batch` / :func:`unpack_report_batch`): a
JSON header carrying the protocol spec and frame bookkeeping followed by
length-prefixed packed reports.  This is the wire protocol of the ingest
gateway in :mod:`repro.service` -- a pure container over the v1 report
layout, so the gateway can route frames to shard workers without
decoding any arrays.

A fourth magic, ``REPROWAL\\x01``, frames the gateway's durable ingest
write-ahead log (:mod:`repro.service.wal`): a segment header naming the
epoch, then CRC-protected records each carrying a small JSON meta
document (idempotency key, shard assignment) plus one framed report
batch.  Unlike every other format here, a WAL segment is expected to be
*torn*: the gateway may die mid-append, so :func:`scan_wal_segment`
recovers every intact prefix record and reports -- rather than raises
on -- a truncated or corrupt tail.

A fifth magic, ``REPROSEG\\x01``, frames one *epoch segment* of the
out-of-core store (:mod:`repro.engine.store`): a JSON header describing
the epoch, its protocol spec hash and the byte layout of the body, the
body itself (the epoch's packed v1 accumulator state plus optional
8-byte-aligned int64 *pushdown* vectors, mapped zero-copy at query
time), and a trailing CRC32 over everything before it, so a torn or
bit-flipped segment is detected before a single array is trusted.

Malformed input of any kind -- wrong magic, truncation, garbage JSON,
corrupt array blocks -- raises :class:`SerializationError` with the byte
offset where decoding failed, never a raw ``struct.error`` / ``KeyError``.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

#: Version-1 format tag: accumulator states and reports (the pre-engine
#: wire format, still written by default for byte-for-byte stability).
MAGIC = b"REPROACC\x01"

#: Version-2 format tag: engine envelopes (checkpoints, epoch shards).
MAGIC_V2 = b"REPROACC\x02"

#: Report-batch framing tag: the network wire format of the ingest
#: gateway (:mod:`repro.service`) and of ``encode --output -``.
MAGIC_BATCH = b"REPROBAT\x01"

#: WAL segment framing tag: the gateway's durable ingest log
#: (:mod:`repro.service.wal`), one segment file per epoch.
MAGIC_WAL = b"REPROWAL\x01"

#: Epoch-segment framing tag: one sealed epoch of the out-of-core store
#: (:mod:`repro.engine.store`), CRC-framed and memory-mappable.
MAGIC_SEG = b"REPROSEG\x01"

#: The newest format version this build reads and writes.
FORMAT_VERSION = 2

_MAGICS = {MAGIC: 1, MAGIC_V2: 2}

_LENGTH = struct.Struct("<Q")


class SerializationError(ValueError):
    """Raised when a byte blob cannot be decoded as a packed state/report."""


def pack_blob(
    header: dict, arrays: Mapping[str, np.ndarray] = (), version: int = 1
) -> bytes:
    """Serialize a JSON-able header plus named numeric arrays to bytes.

    ``header`` must be JSON serializable (Python's ``json`` keeps integer
    values exact at arbitrary precision, which the exact accumulators rely
    on).  ``arrays`` values are written as raw ``.npy`` blocks; object
    dtypes are rejected.  ``version`` selects the magic tag: 1 (default)
    for accumulator/report payloads, 2 for engine envelopes.
    """
    try:
        magic = {1: MAGIC, 2: MAGIC_V2}[version]
    except KeyError:
        raise SerializationError(
            f"unknown serialization format version {version!r}; "
            f"this build writes versions 1 and 2"
        ) from None
    arrays = dict(arrays or {})
    body = io.BytesIO()
    for name, array in arrays.items():
        np.lib.format.write_array(
            body, np.ascontiguousarray(array), allow_pickle=False
        )
    document = {"header": header, "arrays": list(arrays)}
    encoded = json.dumps(document, sort_keys=True).encode("utf-8")
    return magic + _LENGTH.pack(len(encoded)) + encoded + body.getvalue()


def _sniff_magic(data: bytes) -> int:
    """The format version of ``data``'s magic tag, or a loud failure."""
    for magic, version in _MAGICS.items():
        if data.startswith(magic):
            return version
    preview = bytes(data[: len(MAGIC)])
    raise SerializationError(
        f"bad magic at offset 0: {preview!r} is not a packed repro "
        f"state/report/envelope (expected {MAGIC!r} or {MAGIC_V2!r})"
    )


def blob_version(data: bytes) -> int:
    """Format version (1 or 2) of a packed blob, via its magic tag."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(f"expected bytes, got {type(data).__name__}")
    return _sniff_magic(bytes(data))


def _decode_document(data) -> Tuple[bytes, dict, int]:
    """Shared front half of decoding: magic, length field, JSON document.

    Returns ``(data, document, body_offset)`` where ``body_offset`` is the
    position of the first npy block.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f"expected bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    _sniff_magic(data)
    offset = len(MAGIC)
    if len(data) < offset + _LENGTH.size:
        raise SerializationError(
            f"truncated blob at offset {len(data)}: need {offset + _LENGTH.size} "
            f"bytes for the header length, have {len(data)}"
        )
    (header_length,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    if header_length > len(data) - offset:
        raise SerializationError(
            f"truncated blob at offset {len(data)}: header declares "
            f"{header_length} bytes but only {len(data) - offset} remain "
            f"after offset {offset}"
        )
    try:
        document = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt header JSON in bytes [{offset}, {offset + header_length}): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise SerializationError(
            f"corrupt header JSON in bytes [{offset}, {offset + header_length}): "
            f"expected an object, got {type(document).__name__}"
        )
    if not isinstance(document.get("header", {}), dict):
        raise SerializationError(
            f"corrupt header JSON in bytes [{offset}, {offset + header_length}): "
            f"'header' must be an object, "
            f"got {type(document['header']).__name__}"
        )
    names = document.get("arrays", [])
    if not isinstance(names, list) or not all(
        isinstance(name, str) for name in names
    ):
        raise SerializationError(
            f"corrupt header JSON in bytes [{offset}, {offset + header_length}): "
            "'arrays' must be a list of names"
        )
    return data, document, offset + header_length


def peek_header(data: bytes) -> dict:
    """Decode only the JSON header of a packed blob (arrays untouched).

    Cheap dispatch helper: lets callers route a blob by ``file_kind`` /
    ``state_kind`` without paying for the array blocks.
    """
    _, document, _ = _decode_document(data)
    return document.get("header", {})


def unpack_blob(data: bytes) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_blob`: return ``(header, arrays)``.

    Accepts both v1 payloads and v2 envelopes (the physical layout is
    identical); use :func:`blob_version` when the version matters.
    """
    data, document, body_offset = _decode_document(data)
    body = io.BytesIO(data[body_offset:])
    arrays: Dict[str, np.ndarray] = {}
    for name in document.get("arrays", []):
        block_offset = body_offset + body.tell()
        try:
            arrays[name] = np.lib.format.read_array(body, allow_pickle=False)
        except Exception as exc:  # numpy raises several internal types here
            raise SerializationError(
                f"corrupt array block {name!r} at offset {block_offset}: {exc}"
            ) from exc
    return document.get("header", {}), arrays


# --------------------------------------------------------------------- #
# framed report batches: the network wire format
# --------------------------------------------------------------------- #
#: ``batch_kind`` tag every report batch declares in its header.
REPORT_BATCH_KIND = "report-batch"


def pack_report_batch(spec, reports) -> bytes:
    """Frame a batch of serialized reports for network transport.

    This is the one payload the ingest gateway (:mod:`repro.service`)
    accepts on ``POST /ingest``: a magic tag (:data:`MAGIC_BATCH`), a JSON
    header carrying the protocol ``spec`` plus frame bookkeeping, then the
    packed bytes of each report, length-prefixed::

        REPROBAT\\x01 | u64 header length | JSON header
                     | (u64 frame length | report bytes) * count

    ``reports`` is an iterable of :class:`~repro.core.session.Report`
    instances (or their already-packed bytes); each report stays in the
    existing pickle-free v1 layout, so the frame is a pure container --
    the gateway can split and fan frames out to shard workers without
    decoding a single array.  The header records ``count`` and the total
    ``n_users`` so receivers can account for a batch from the header
    alone (for packed bytes the user count is peeked from each report's
    own header).
    """
    frames: list = []
    n_users = 0
    for report in reports:
        if isinstance(report, (bytes, bytearray, memoryview)):
            blob = bytes(report)
            n_users += int(peek_header(blob).get("n_users", 0))
        elif callable(getattr(report, "to_bytes", None)):
            blob = report.to_bytes()
            n_users += int(getattr(report, "n_users", 0))
        else:
            raise SerializationError(
                f"cannot frame a report of type {type(report).__name__}; "
                "expected a Report or packed report bytes"
            )
        frames.append(blob)
    if spec is not None and callable(getattr(spec, "spec", None)):
        spec = spec.spec()  # a live protocol object; record its registry spec
    header = {
        "batch_kind": REPORT_BATCH_KIND,
        "count": len(frames),
        "n_users": n_users,
    }
    if spec is not None:
        header["protocol"] = spec
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    out = bytearray(MAGIC_BATCH)
    out += _LENGTH.pack(len(encoded))
    out += encoded
    for blob in frames:
        out += _LENGTH.pack(len(blob))
        out += blob
    return bytes(out)


def _decode_batch_header(data) -> Tuple[bytes, dict, int]:
    """Front half of batch decoding: magic, length field, JSON header.

    Returns ``(data, header, frames_offset)``.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if not data.startswith(MAGIC_BATCH):
        preview = bytes(data[: len(MAGIC_BATCH)])
        raise SerializationError(
            f"bad magic at offset 0: {preview!r} is not a framed report "
            f"batch (expected {MAGIC_BATCH!r})"
        )
    offset = len(MAGIC_BATCH)
    if len(data) < offset + _LENGTH.size:
        raise SerializationError(
            f"truncated report batch at offset {len(data)}: need "
            f"{offset + _LENGTH.size} bytes for the header length, have {len(data)}"
        )
    (header_length,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    if header_length > len(data) - offset:
        raise SerializationError(
            f"truncated report batch at offset {len(data)}: header declares "
            f"{header_length} bytes but only {len(data) - offset} remain "
            f"after offset {offset}"
        )
    try:
        header = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt batch header JSON in bytes "
            f"[{offset}, {offset + header_length}): {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("batch_kind") != REPORT_BATCH_KIND:
        kind = header.get("batch_kind") if isinstance(header, dict) else None
        raise SerializationError(
            f"corrupt batch header JSON in bytes "
            f"[{offset}, {offset + header_length}): batch_kind "
            f"{kind!r} is not {REPORT_BATCH_KIND!r}"
        )
    count = header.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise SerializationError(
            f"corrupt batch header JSON in bytes "
            f"[{offset}, {offset + header_length}): 'count' must be a "
            f"non-negative integer, got {count!r}"
        )
    return data, header, offset + header_length


def report_batch_header(data) -> dict:
    """Decode only the JSON header of a framed report batch.

    Cheap accounting/routing helper: the gateway validates a batch's
    ``protocol`` spec and reads ``count`` / ``n_users`` from here without
    touching the report frames.
    """
    _, header, _ = _decode_batch_header(data)
    return header


def unpack_report_batch(data) -> Tuple[dict, List[bytes]]:
    """Inverse of :func:`pack_report_batch`: return ``(header, frames)``.

    ``frames`` is the list of packed report byte strings, in batch order;
    decode each with ``Report.from_bytes``.  Truncated frames, a frame
    count that disagrees with the header, or trailing garbage after the
    last frame all raise :class:`SerializationError` with the offending
    byte offset.
    """
    data, header, offset = _decode_batch_header(data)
    count = header["count"]
    frames: List[bytes] = []
    for index in range(count):
        if len(data) - offset < _LENGTH.size:
            raise SerializationError(
                f"truncated report batch at offset {offset}: need "
                f"{_LENGTH.size} bytes for the length of frame "
                f"{index}/{count}, have {len(data) - offset}"
            )
        (frame_length,) = _LENGTH.unpack_from(data, offset)
        offset += _LENGTH.size
        if frame_length > len(data) - offset:
            raise SerializationError(
                f"truncated report batch at offset {offset}: frame "
                f"{index}/{count} declares {frame_length} bytes but only "
                f"{len(data) - offset} remain"
            )
        frames.append(data[offset : offset + frame_length])
        offset += frame_length
    if offset != len(data):
        raise SerializationError(
            f"trailing garbage after frame {count - 1}/{count}: "
            f"{len(data) - offset} unexpected bytes at offset {offset}"
        )
    return header, frames


# --------------------------------------------------------------------- #
# WAL segments: the durable ingest log of the gateway
# --------------------------------------------------------------------- #
#: ``wal_kind`` tag every WAL segment declares in its header.
WAL_SEGMENT_KIND = "ingest-wal"

_CRC = struct.Struct("<I")


def pack_wal_segment_header(epoch: int, extra: Optional[dict] = None) -> bytes:
    """The on-disk prefix of one WAL segment file.

    ``MAGIC_WAL | u64 header length | JSON header`` -- the header names
    the epoch the segment belongs to, so recovery never depends on file
    names alone.
    """
    header = {"wal_kind": WAL_SEGMENT_KIND, "epoch": int(epoch)}
    if extra:
        header.update(extra)
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC_WAL + _LENGTH.pack(len(encoded)) + encoded


def read_wal_segment_header(data) -> Tuple[dict, int]:
    """Decode a segment's header; return ``(header, records_offset)``.

    Unlike record scanning, a segment whose *header* is damaged is
    unusable and raises :class:`SerializationError` -- the header is
    written in one small atomic-in-practice append before any record, so
    a torn header means the file is not a WAL segment at all.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if not data.startswith(MAGIC_WAL):
        preview = bytes(data[: len(MAGIC_WAL)])
        raise SerializationError(
            f"bad magic at offset 0: {preview!r} is not a WAL segment "
            f"(expected {MAGIC_WAL!r})"
        )
    offset = len(MAGIC_WAL)
    if len(data) < offset + _LENGTH.size:
        raise SerializationError(
            f"truncated WAL segment at offset {len(data)}: need "
            f"{offset + _LENGTH.size} bytes for the header length"
        )
    (header_length,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    if header_length > len(data) - offset:
        raise SerializationError(
            f"truncated WAL segment at offset {len(data)}: header declares "
            f"{header_length} bytes but only {len(data) - offset} remain"
        )
    try:
        header = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt WAL segment header in bytes "
            f"[{offset}, {offset + header_length}): {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("wal_kind") != WAL_SEGMENT_KIND:
        kind = header.get("wal_kind") if isinstance(header, dict) else None
        raise SerializationError(
            f"corrupt WAL segment header: wal_kind {kind!r} is not "
            f"{WAL_SEGMENT_KIND!r}"
        )
    return header, offset + header_length


def pack_wal_record(meta: dict, blob: bytes) -> bytes:
    """Frame one WAL record: CRC + length + (JSON meta, payload blob).

    ``u32 crc32(payload) | u64 payload length | payload`` where the
    payload is ``u64 meta length | meta JSON | blob``.  The CRC covers
    the whole payload so a torn or bit-flipped tail is detected by
    :func:`scan_wal_segment` instead of being replayed as garbage.
    """
    encoded = json.dumps(dict(meta or {}), sort_keys=True).encode("utf-8")
    payload = _LENGTH.pack(len(encoded)) + encoded + bytes(blob)
    return _CRC.pack(zlib.crc32(payload)) + _LENGTH.pack(len(payload)) + payload


def scan_wal_segment(data) -> Tuple[dict, List[Tuple[dict, bytes]], Optional[int]]:
    """Decode every intact record of a WAL segment, tolerating a torn tail.

    Returns ``(header, records, torn_offset)``: ``records`` is the list
    of ``(meta, blob)`` pairs that passed their CRC, in append order, and
    ``torn_offset`` is the byte offset of the first truncated/corrupt
    record (``None`` for a clean segment).  Everything *after* a bad
    record is discarded -- the log is append-only, so a damaged record
    means the process died mid-append and nothing beyond it was ever
    acknowledged.
    """
    header, offset = read_wal_segment_header(data)
    data = bytes(data)
    records: List[Tuple[dict, bytes]] = []
    while offset < len(data):
        start = offset
        if len(data) - offset < _CRC.size + _LENGTH.size:
            return header, records, start
        (crc,) = _CRC.unpack_from(data, offset)
        (payload_length,) = _LENGTH.unpack_from(data, offset + _CRC.size)
        offset += _CRC.size + _LENGTH.size
        if payload_length > len(data) - offset:
            return header, records, start
        payload = data[offset : offset + payload_length]
        offset += payload_length
        if zlib.crc32(payload) != crc:
            return header, records, start
        if payload_length < _LENGTH.size:
            return header, records, start
        (meta_length,) = _LENGTH.unpack_from(payload, 0)
        if meta_length > payload_length - _LENGTH.size:
            return header, records, start
        try:
            meta = json.loads(
                payload[_LENGTH.size : _LENGTH.size + meta_length].decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError):
            return header, records, start
        if not isinstance(meta, dict):
            return header, records, start
        records.append((meta, payload[_LENGTH.size + meta_length :]))
    return header, records, None


# --------------------------------------------------------------------- #
# epoch segments: the out-of-core store's per-epoch files
# --------------------------------------------------------------------- #
#: ``seg_kind`` tag every epoch segment declares in its header.
EPOCH_SEGMENT_KIND = "epoch-segment"

#: Layout version of the epoch-segment contents.
EPOCH_SEGMENT_FORMAT = 1

_SEG_ALIGN = 8


def _pad_to(length: int, align: int = _SEG_ALIGN) -> int:
    """Bytes of padding needed to advance ``length`` to a multiple of ``align``."""
    return (-length) % align


def pack_epoch_segment(
    epoch: int,
    spec_hash: str,
    state_blob: bytes,
    *,
    n_reports: int = 0,
    pushdown: Optional[dict] = None,
    aggregate: Optional[dict] = None,
) -> bytes:
    """Frame one sealed epoch for the out-of-core store.

    ``MAGIC_SEG | u64 header length | JSON header | body | u32 crc32``
    where the CRC covers every byte before it, so torn tails and bit
    flips are detected before any content is trusted.  The body holds
    the epoch's packed v1 accumulator ``state_blob`` followed by the
    optional *pushdown* region: the raw little-endian int64 sufficient
    statistic vectors of each oracle child, 8-byte aligned so a reader
    can view them zero-copy straight out of a memory map.  All offsets
    in the header are relative to the body start; the header JSON is
    space-padded so the body itself starts 8-byte aligned.

    ``pushdown`` (optional) is a plain-data description of the state::

        {"label": ..., "config": {...}, "n_users": N,
         "children": [{"oracle_kind": ..., "config": {...},
                       "n_reports": N, "vectors": {name: int64 array}}]}

    Summing the pushdown vectors of many segments elementwise is exactly
    the accumulator merge (integer addition is associative and
    commutative), which is what makes store-backed windowed queries
    bit-identical to the in-RAM merge path.

    ``aggregate`` (optional) marks the segment as a *pre-merged
    aggregate* over ``{"level": L, "start": S, "count": 2**L}``
    consecutive epochs rather than a single sealed epoch; ``epoch`` is
    then the block start ``S``.  Aggregates reuse the exact same framing
    so every reader (CRC check, state decode, pushdown views) applies
    unchanged.
    """
    state_blob = bytes(state_blob)
    body = bytearray(state_blob)
    header: dict = {
        "seg_kind": EPOCH_SEGMENT_KIND,
        "format": EPOCH_SEGMENT_FORMAT,
        "epoch": int(epoch),
        "spec_hash": str(spec_hash),
        "n_reports": int(n_reports),
        "state": {"offset": 0, "length": len(state_blob)},
    }
    if aggregate is not None:
        header["aggregate"] = {
            "level": int(aggregate["level"]),
            "start": int(aggregate["start"]),
            "count": int(aggregate["count"]),
        }
    if pushdown is not None:
        body += b"\x00" * _pad_to(len(body))
        children = []
        for child in pushdown.get("children", []):
            vectors = []
            for name, vector in child["vectors"].items():
                vector = np.ascontiguousarray(vector, dtype="<i8")
                offset = len(body)
                body += vector.tobytes()
                vectors.append(
                    {"name": str(name), "shape": list(vector.shape), "offset": offset}
                )
            children.append(
                {
                    "oracle_kind": child["oracle_kind"],
                    "config": child["config"],
                    "n_reports": int(child["n_reports"]),
                    "vectors": vectors,
                }
            )
        header["pushdown"] = {
            "label": pushdown["label"],
            "config": pushdown["config"],
            "n_users": int(pushdown["n_users"]),
            "children": children,
        }
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    # Pad the header (JSON tolerates trailing spaces) so the body -- and
    # with it every vector offset -- lands 8-byte aligned in the file.
    prefix = len(MAGIC_SEG) + _LENGTH.size
    encoded += b" " * _pad_to(prefix + len(encoded))
    out = bytearray(MAGIC_SEG)
    out += _LENGTH.pack(len(encoded))
    out += encoded
    out += body
    out += _CRC.pack(zlib.crc32(out))
    return bytes(out)


def read_epoch_segment(data) -> Tuple[dict, int]:
    """Validate one epoch segment; return ``(header, body_offset)``.

    ``data`` may be bytes or a memory map; the whole-file CRC is checked
    here, once, so subsequent zero-copy views over the body need no
    further validation.  A short file, a bad magic, garbage JSON, or a
    CRC mismatch (torn or bit-flipped tail) each raise
    :class:`SerializationError` naming what went wrong.
    """
    try:
        view = memoryview(data)
    except TypeError:
        raise SerializationError(
            f"expected bytes or a buffer, got {type(data).__name__}"
        ) from None
    try:
        return _read_epoch_segment(view)
    except SerializationError:
        # Release the view before the exception propagates: a traceback
        # frame keeps locals alive, and a still-exported view would stop
        # the caller from closing a memory map it is validating.
        view.release()
        raise


def _read_epoch_segment(view: memoryview) -> Tuple[dict, int]:
    if len(view) < len(MAGIC_SEG) or bytes(view[: len(MAGIC_SEG)]) != MAGIC_SEG:
        preview = bytes(view[: len(MAGIC_SEG)])
        raise SerializationError(
            f"bad magic at offset 0: {preview!r} is not an epoch segment "
            f"(expected {MAGIC_SEG!r})"
        )
    offset = len(MAGIC_SEG)
    if len(view) < offset + _LENGTH.size + _CRC.size:
        raise SerializationError(
            f"truncated epoch segment: {len(view)} bytes is too short to "
            "hold the header length and trailing CRC (torn tail?)"
        )
    (header_length,) = _LENGTH.unpack_from(view, offset)
    offset += _LENGTH.size
    if header_length > len(view) - offset - _CRC.size:
        raise SerializationError(
            f"truncated epoch segment: header declares {header_length} bytes "
            f"but only {len(view) - offset - _CRC.size} remain before the CRC "
            "(torn tail?)"
        )
    (stored_crc,) = _CRC.unpack_from(view, len(view) - _CRC.size)
    actual_crc = zlib.crc32(view[: len(view) - _CRC.size])
    if actual_crc != stored_crc:
        raise SerializationError(
            f"epoch segment failed its CRC check (stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}): torn or corrupt segment tail"
        )
    try:
        header = json.loads(bytes(view[offset : offset + header_length]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt epoch segment header in bytes "
            f"[{offset}, {offset + header_length}): {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("seg_kind") != EPOCH_SEGMENT_KIND:
        kind = header.get("seg_kind") if isinstance(header, dict) else None
        raise SerializationError(
            f"corrupt epoch segment header: seg_kind {kind!r} is not "
            f"{EPOCH_SEGMENT_KIND!r}"
        )
    if int(header.get("format", 0)) != EPOCH_SEGMENT_FORMAT:
        raise SerializationError(
            f"epoch segment format {header.get('format')!r} is not supported "
            f"by this build (expected {EPOCH_SEGMENT_FORMAT})"
        )
    return header, offset + header_length


def segment_state_bytes(data, header: dict, body_offset: int) -> bytes:
    """The packed v1 accumulator state embedded in a validated segment."""
    view = memoryview(data)
    state = header.get("state", {})
    start = body_offset + int(state.get("offset", 0))
    length = int(state.get("length", -1))
    if length < 0 or start + length > len(view) - _CRC.size:
        raise SerializationError(
            f"epoch segment state descriptor {state!r} points outside the body"
        )
    return bytes(view[start : start + length])


def segment_pushdown_children(data, header: dict, body_offset: int) -> List[dict]:
    """Zero-copy views of a validated segment's pushdown vectors.

    Returns one dict per oracle child -- ``oracle_kind``, ``config``,
    ``n_reports`` and ``vectors`` (name -> read-only int64 array viewing
    the underlying buffer) -- or raises if the segment carries no
    pushdown region or a descriptor points outside the body.
    """
    pushdown = header.get("pushdown")
    if not isinstance(pushdown, dict):
        raise SerializationError("epoch segment carries no pushdown region")
    view = memoryview(data)
    limit = len(view) - _CRC.size
    children: List[dict] = []
    for child in pushdown.get("children", []):
        vectors: Dict[str, np.ndarray] = {}
        for descriptor in child.get("vectors", []):
            shape = tuple(int(size) for size in descriptor["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            start = body_offset + int(descriptor["offset"])
            if start + 8 * count > limit:
                raise SerializationError(
                    f"epoch segment pushdown vector {descriptor!r} points "
                    "outside the body"
                )
            vectors[descriptor["name"]] = np.frombuffer(
                view, dtype="<i8", count=count, offset=start
            ).reshape(shape)
        children.append(
            {
                "oracle_kind": child["oracle_kind"],
                "config": child["config"],
                "n_reports": int(child["n_reports"]),
                "vectors": vectors,
            }
        )
    return children


def pack_child(child_bytes: bytes) -> np.ndarray:
    """View packed child bytes as a ``uint8`` array for nesting in a blob."""
    return np.frombuffer(child_bytes, dtype=np.uint8)


def unpack_child(array: np.ndarray) -> bytes:
    """Recover the packed bytes of a nested child from its ``uint8`` array."""
    return np.asarray(array, dtype=np.uint8).tobytes()
