"""Reference (pure numpy) implementations of the oracle compute kernels.

This module is the single source of truth for kernel *semantics*: every
function here is the vectorised numpy code that previously lived inline in
``repro.frequency_oracles`` -- relocated, not rewritten -- so the numpy
backend reproduces the pre-kernel outputs bit-for-bit.  Alternative
backends (:mod:`repro.core.kernels.numba_backend`) must match these
functions exactly on integer outputs and to <= 1e-12 on HRR's float path;
``tests/test_kernels.py`` sweeps that equivalence with hypothesis.

All kernels are pure functions over **pre-drawn randomness**: the caller
(the oracle) performs every ``rng`` draw in a fixed order and passes the
results in, which is what keeps report streams seed-for-seed reproducible
across backends.

Kernel contracts
----------------
``grr_perturb(items, keep, noise)``
    Generalized randomized response: report ``items[i]`` where ``keep``,
    otherwise a uniformly random *other* item derived from
    ``noise[i] ~ U[0, D-1)`` by skipping the true value.
``olh_encode(multipliers, offsets, items, num_buckets, keep, noise)``
    Fused OLH encode: universal hash ``((a*x + b) mod P) mod g`` plus GRR
    perturbation over the ``g`` buckets.
``olh_support(multipliers, offsets, buckets, domain_size, num_buckets,
chunk)``
    The ``O(N * D)`` OLH decode: for every domain item, the number of
    users whose reported bucket equals the item's hash.
``unary_perturb(uniforms, p_zero, items, true_uniforms, p_one)``
    OUE/SUE/THE bit perturbation: an ``(N, D)`` uint8 matrix where bit
    ``j`` of row ``i`` is ``uniforms[i, j] < p_zero`` except the true bit,
    which is ``true_uniforms[i] < p_one``.
``unary_sums(reports)``
    Per-item int64 column sums of an ``(N, D)`` unary report matrix.
``hrr_encode(items, signs, indices, keep)``
    HRR signed-coefficient encode: the +/-1 Hadamard entry
    ``H[items[i], indices[i]]`` times ``signs[i]``, flipped where not
    ``keep``.
``hrr_value_sums(indices, values, padded_size)``
    Per-coefficient sums of raw +/-1 report values, rounded to int64
    (exact: sums of +/-1 stay far below 2**53).
``categorical_counts(reports, domain_size)``
    Validated int64 histogram of categorical reports.
``column_sums(vectors, out)``
    Blocked elementwise int64 sum of equal-length vectors -- the gather
    step of windowed query pushdown over mmap'd segment statistics.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: A Mersenne prime comfortably larger than any domain we hash from, small
#: enough that ``a * x`` never overflows an int64 (a < 2^31, x < 2^31).
HASH_PRIME = (1 << 31) - 1


def grr_perturb(
    items: np.ndarray, keep: np.ndarray, noise: np.ndarray
) -> np.ndarray:
    # Sample a uniformly random item different from the true one by
    # drawing from [0, D-1) and skipping over the true value.
    noise = np.where(noise >= items, noise + 1, noise)
    return np.where(keep, items, noise).astype(np.int64)


def olh_encode(
    multipliers: np.ndarray,
    offsets: np.ndarray,
    items: np.ndarray,
    num_buckets: int,
    keep: np.ndarray,
    noise: np.ndarray,
) -> np.ndarray:
    products = (
        multipliers.astype(np.int64) * items.astype(np.int64)
        + offsets.astype(np.int64)
    ) % HASH_PRIME
    true_buckets = (products % num_buckets).astype(np.int64)
    noise = np.where(noise >= true_buckets, noise + 1, noise)
    return np.where(keep, true_buckets, noise).astype(np.int64)


def olh_support(
    multipliers: np.ndarray,
    offsets: np.ndarray,
    buckets: np.ndarray,
    domain_size: int,
    num_buckets: int,
    chunk: int,
) -> np.ndarray:
    num_reports = len(buckets)
    domain_items = np.arange(domain_size, dtype=np.int64)
    support = np.zeros(domain_size, dtype=np.int64)
    # O(N * D) decoding, chunked over users to bound memory.  One
    # (chunk, D) work buffer is reused across iterations with in-place
    # arithmetic -- same hash ((a * x + b) mod P) mod g, a fraction of the
    # allocation churn.
    chunk = min(int(chunk), max(num_reports, 1))
    work = np.empty((chunk, domain_size), dtype=np.int64)
    for start in range(0, num_reports, chunk):
        stop = min(start + chunk, num_reports)
        rows = work[: stop - start]
        np.multiply(multipliers[start:stop, None], domain_items[None, :], out=rows)
        rows += offsets[start:stop, None]
        rows %= HASH_PRIME
        rows %= num_buckets
        support += np.count_nonzero(rows == buckets[start:stop, None], axis=0)
    return support


def unary_perturb(
    uniforms: np.ndarray,
    p_zero: float,
    items: np.ndarray,
    true_uniforms: np.ndarray,
    p_one: float,
) -> np.ndarray:
    # Start from the "all bits are zero" perturbation and then resample
    # the single true bit of each user at its own probability.
    reports = (uniforms < p_zero).astype(np.uint8)
    true_bits = (true_uniforms < p_one).astype(np.uint8)
    reports[np.arange(len(items)), items] = true_bits
    return reports


def unary_sums(reports: np.ndarray) -> np.ndarray:
    return reports.sum(axis=0).astype(np.int64)


def hrr_encode(
    items: np.ndarray,
    signs: np.ndarray,
    indices: np.ndarray,
    keep: np.ndarray,
) -> np.ndarray:
    from repro.frequency_oracles.hadamard import hadamard_entry

    true_values = signs * hadamard_entry(items, indices)
    return np.where(keep, true_values, -true_values)


def hrr_value_sums(
    indices: np.ndarray, values: np.ndarray, padded_size: int
) -> np.ndarray:
    sums = np.bincount(
        np.asarray(indices, dtype=np.int64),
        weights=np.asarray(values, dtype=np.float64),
        minlength=int(padded_size),
    )
    return np.rint(sums).astype(np.int64)


def categorical_counts(reports: np.ndarray, domain_size: int) -> np.ndarray:
    reports = np.asarray(reports, dtype=np.int64)
    if reports.ndim != 1:
        raise ValueError(f"reports must be a 1-D array, got shape {reports.shape}")
    if reports.size and (reports.min() < 0 or reports.max() >= domain_size):
        raise ValueError(
            f"reports contain values outside the domain of size {domain_size}"
        )
    return np.bincount(reports, minlength=domain_size).astype(np.int64)


#: int64 elements per ``column_sums`` block (256 KiB per vector slice):
#: small enough that one slice of every input stays cache-resident while
#: it is accumulated, large enough that the Python loop overhead vanishes.
COLUMN_SUMS_BLOCK = 1 << 15


def column_sums(vectors, out: "np.ndarray | None" = None) -> np.ndarray:
    """Elementwise int64 sum of equal-length integer vectors.

    ``vectors`` is a sequence of 1-D arrays (any integer dtype; mmap'd
    little-endian ``<i8`` views pass through zero-copy).  The sum is
    exact int64 arithmetic -- associative and commutative -- so any
    blocking or ordering is bit-identical to a naive left-to-right sum.
    ``out``, when given, must be a writable int64 array of the same
    length; it is overwritten (not accumulated into) and returned.
    """
    arrays = [
        np.ascontiguousarray(vector, dtype=np.int64).reshape(-1)
        for vector in vectors
    ]
    if not arrays:
        if out is None:
            raise ValueError("column_sums needs at least one vector or an out=")
        out[...] = 0
        return out
    length = arrays[0].shape[0]
    for array in arrays[1:]:
        if array.shape[0] != length:
            raise ValueError(
                f"column_sums vectors disagree on length: {array.shape[0]} "
                f"!= {length}"
            )
    if out is None:
        out = np.zeros(length, dtype=np.int64)
    else:
        if out.shape != (length,) or out.dtype != np.int64:
            raise ValueError(
                f"column_sums out= must be int64 of shape ({length},), got "
                f"{out.dtype} {out.shape}"
            )
        out[...] = 0
    for start in range(0, length, COLUMN_SUMS_BLOCK):
        stop = min(start + COLUMN_SUMS_BLOCK, length)
        block = out[start:stop]
        for array in arrays:
            block += array[start:stop]
    return out


def multinomial_level_split(
    counts: np.ndarray,
    probabilities: np.ndarray,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Split each item's user count multinomially across the levels.

    Implemented as the standard sequence of Binomial draws so it vectorises
    over the domain.  This is the aggregate-simulation counterpart of the
    per-user level sampling: ``counts[v]`` users holding item ``v`` are
    distributed over ``len(probabilities)`` levels.

    Unlike the other kernels this one *draws* randomness, so it is shared
    verbatim by every backend: the Binomial sampling must stay in numpy
    for seed-for-seed reproducibility.
    """
    num_levels = len(probabilities)
    remaining = counts.copy()
    remaining_prob = 1.0
    per_level: List[np.ndarray] = []
    for level in range(num_levels):
        prob = probabilities[level]
        if remaining_prob <= 0:
            take = np.zeros_like(remaining)
        elif level == num_levels - 1:
            take = remaining.copy()
        else:
            take = rng.binomial(remaining, min(1.0, prob / remaining_prob))
        per_level.append(take.astype(np.int64))
        remaining = remaining - take
        remaining_prob -= prob
    return per_level


KERNELS = {
    "grr_perturb": grr_perturb,
    "olh_encode": olh_encode,
    "olh_support": olh_support,
    "unary_perturb": unary_perturb,
    "unary_sums": unary_sums,
    "hrr_encode": hrr_encode,
    "hrr_value_sums": hrr_value_sums,
    "categorical_counts": categorical_counts,
    "column_sums": column_sums,
}
