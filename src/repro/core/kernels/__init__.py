"""Named compute kernels behind the encode/ingest hot loops.

Every frequency oracle splits its work into two halves:

* **randomness** -- the ``rng.random`` / ``rng.integers`` draws that make a
  report epsilon-LDP.  These always run through numpy's ``Generator`` so
  that a given seed produces the same report stream no matter which
  backend executes the arithmetic;
* **deterministic arithmetic** -- hashing, bit perturbation, Hadamard
  entries, and the fused accumulation of reports into int64 sufficient
  statistics.  That half is what this package abstracts: a small registry
  of named kernels with interchangeable implementations.

Two backends ship:

* ``"numpy"`` -- the reference implementation, relocated verbatim from the
  oracle modules (:mod:`repro.core.kernels.reference`).  Always available.
* ``"numba"`` -- ``@njit(cache=True)`` compiled loops
  (:mod:`repro.core.kernels.numba_backend`).  Optional: it is only
  imported on demand, so numba stays an optional dependency
  (``pip install repro[accel]``).

Selection order: an explicit ``kernel_backend=`` argument on an oracle
beats the ``REPRO_KERNEL_BACKEND`` environment variable, which beats the
``"numpy"`` default.  An unknown name or an unavailable backend degrades
to numpy with a :class:`KernelBackendWarning` instead of failing -- the
backend is a pure execution knob.  For the same reason it is **never**
serialized into protocol specs or accumulator configs: states written
under one backend load and merge under any other, and both backends are
pinned bit-identical on the integer paths (HRR's float debias path agrees
to <= 1e-12) by the golden-config tests.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional

from repro.core.kernels.reference import multinomial_level_split

#: Environment variable naming the default backend for new oracles.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Backend used when nothing is requested (and the fallback target).
DEFAULT_KERNEL_BACKEND = "numpy"


class KernelBackendWarning(RuntimeWarning):
    """A requested kernel backend could not be used; numpy took over."""


class KernelBackendError(RuntimeError):
    """A kernel backend is unknown or cannot be loaded."""


class KernelBackend:
    """One named implementation of the oracle compute kernels.

    A backend is a bag of pure functions over pre-drawn randomness -- it
    owns no state and no RNG, so two backends given the same inputs must
    return identical outputs (the equivalence tests enforce this).  The
    kernel signatures are documented on the reference implementations in
    :mod:`repro.core.kernels.reference`.
    """

    #: The kernel names every backend must provide.
    KERNEL_NAMES = (
        "grr_perturb",
        "olh_encode",
        "olh_support",
        "unary_perturb",
        "unary_sums",
        "hrr_encode",
        "hrr_value_sums",
        "categorical_counts",
        "column_sums",
    )

    def __init__(self, name: str, kernels: Dict[str, Callable]) -> None:
        self.name = str(name)
        missing = [key for key in self.KERNEL_NAMES if key not in kernels]
        if missing:
            raise KernelBackendError(
                f"backend {name!r} is missing kernels: {missing}"
            )
        for key in self.KERNEL_NAMES:
            setattr(self, key, kernels[key])
        # RNG-bound helpers are shared verbatim by every backend: they are
        # dominated by the Generator draws, which must stay in numpy for
        # seed-for-seed reproducibility.
        self.multinomial_level_split = multinomial_level_split

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"KernelBackend({self.name!r})"


def _load_reference_backend() -> KernelBackend:
    from repro.core.kernels import reference

    return KernelBackend("numpy", reference.KERNELS)


def _load_numba_backend() -> KernelBackend:
    """Import (and thereby JIT-register) the numba kernels.

    Raises ``ImportError`` when numba is not installed; kept as a
    module-level hook so tests can simulate an absent numba without
    uninstalling anything.
    """
    from repro.core.kernels import numba_backend

    return KernelBackend("numba", numba_backend.KERNELS)


_BACKEND_LOADERS: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": _load_reference_backend,
    "numba": _load_numba_backend,
}

_BACKEND_CACHE: Dict[str, KernelBackend] = {}


def available_backends() -> List[str]:
    """Registered backend names (availability is only known on load)."""
    return sorted(_BACKEND_LOADERS)


def clear_backend_cache() -> None:
    """Drop loaded backends (test hook for fallback simulation)."""
    _BACKEND_CACHE.clear()


def get_backend(name: str) -> KernelBackend:
    """Load backend ``name``, raising :class:`KernelBackendError` on failure."""
    key = str(name).strip().lower()
    cached = _BACKEND_CACHE.get(key)
    if cached is not None:
        return cached
    loader = _BACKEND_LOADERS.get(key)
    if loader is None:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        )
    try:
        backend = loader()
    except ImportError as exc:
        raise KernelBackendError(
            f"kernel backend {key!r} is not available: {exc}"
        ) from exc
    _BACKEND_CACHE[key] = backend
    return backend


def resolve_backend(choice: Optional[object] = None) -> KernelBackend:
    """Resolve the backend an oracle should compute with.

    ``choice`` may be ``None`` (consult ``REPRO_KERNEL_BACKEND``, default
    numpy), a backend name, or an already-resolved :class:`KernelBackend`
    (returned unchanged, so oracles can share one instance).  Unknown or
    unavailable backends fall back to numpy with a
    :class:`KernelBackendWarning` -- a missing accelerator must never
    change *whether* a protocol runs, only how fast.
    """
    if isinstance(choice, KernelBackend):
        return choice
    requested = choice if choice is not None else os.environ.get(KERNEL_BACKEND_ENV)
    if requested is None or str(requested).strip() == "":
        return get_backend(DEFAULT_KERNEL_BACKEND)
    try:
        return get_backend(str(requested))
    except KernelBackendError as exc:
        warnings.warn(
            f"{exc}; falling back to the {DEFAULT_KERNEL_BACKEND!r} backend",
            KernelBackendWarning,
            stacklevel=2,
        )
        return get_backend(DEFAULT_KERNEL_BACKEND)


__all__ = [
    "DEFAULT_KERNEL_BACKEND",
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "KernelBackendError",
    "KernelBackendWarning",
    "available_backends",
    "clear_backend_cache",
    "get_backend",
    "multinomial_level_split",
    "resolve_backend",
]
