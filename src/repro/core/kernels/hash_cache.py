"""Cross-epoch cache of decoded OLH support vectors.

The OLH aggregation hot spot is the ``O(N * D)`` support decode: for a
batch of reports ``(multipliers, offsets, buckets)`` and a domain of
size ``D``, count for every domain item how many users' reported bucket
equals the item's hash.  The decode is a *pure function* of the report
arrays plus two spec parameters (``domain_size``, ``num_buckets``) --
no RNG, no accumulator state -- so when the same batch is replayed
(WAL recovery re-delivering a batch, chaos tests re-ingesting for
bit-identity checks, benchmarks timing repeated rounds, aggregate
rebuilds re-reading sealed epochs), the support vector can be served
from cache instead of recomputed.

Keys are a SHA-256 over the spec parameters and the raw little-endian
int64 report bytes, so two batches collide only if they are the same
batch -- which is exactly when reuse is bit-identical by construction.
The cache is byte-bounded LRU (``REPRO_OLH_CACHE_BYTES``, default 64
MiB; ``0`` disables caching entirely) and thread-safe: gateway shard
workers and the query executor share one process-wide instance, whose
hit/miss/eviction counters surface through ``/stats``.

Cached vectors are handed out as **readonly** views; callers accumulate
them with ``+=`` into their own int64 state, never in place.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

#: Environment variable bounding the default cache (bytes; 0 disables).
OLH_CACHE_BYTES_ENV = "REPRO_OLH_CACHE_BYTES"

#: Default byte bound of the process-wide cache.
DEFAULT_OLH_CACHE_BYTES = 64 * 1024 * 1024


class OlhHashCache:
    """Byte-bounded, thread-safe LRU of decoded OLH support vectors."""

    def __init__(self, max_bytes: int = DEFAULT_OLH_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        """Whether lookups and inserts do anything at all."""
        return self.max_bytes > 0

    @staticmethod
    def key(
        domain_size: int,
        num_buckets: int,
        multipliers: np.ndarray,
        offsets: np.ndarray,
        buckets: np.ndarray,
    ) -> bytes:
        """The content digest of one decode's inputs.

        Hashes the spec parameters plus the canonical (contiguous
        little-endian int64) bytes of every report array, so the key is
        independent of how the caller happened to lay the arrays out.
        """
        digest = hashlib.sha256()
        digest.update(b"olh-support\x00")
        digest.update(np.int64(domain_size).tobytes())
        digest.update(np.int64(num_buckets).tobytes())
        for array in (multipliers, offsets, buckets):
            data = np.ascontiguousarray(array, dtype="<i8")
            digest.update(data.tobytes())
        return digest.digest()

    def get(self, key: bytes) -> Optional[np.ndarray]:
        """The cached support vector for ``key``, or ``None`` (a miss)."""
        if not self.enabled:
            return None
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cached

    def put(self, key: bytes, support: np.ndarray) -> np.ndarray:
        """Insert a decoded vector; returns the readonly view to use.

        Oversized vectors (bigger than the whole bound) are handed back
        untouched without being stored, so a single giant domain cannot
        flush the cache.
        """
        support = np.ascontiguousarray(support, dtype=np.int64)
        view = support.view()
        view.flags.writeable = False
        if not self.enabled or view.nbytes > self.max_bytes:
            return view
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = view
            self._bytes += view.nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
        return view

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """Counters for observability endpoints (`/stats`, CLI)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OlhHashCache({self.stats()})"


_default_cache: Optional[OlhHashCache] = None
_default_lock = threading.Lock()


def _bound_from_env() -> int:
    raw = os.environ.get(OLH_CACHE_BYTES_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_OLH_CACHE_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_OLH_CACHE_BYTES


def default_hash_cache() -> OlhHashCache:
    """The process-wide cache (created lazily, bound taken from the env)."""
    global _default_cache
    cache = _default_cache
    if cache is None:
        with _default_lock:
            cache = _default_cache
            if cache is None:
                cache = OlhHashCache(_bound_from_env())
                _default_cache = cache
    return cache


def configure_hash_cache(max_bytes: int) -> OlhHashCache:
    """Replace the process-wide cache with a fresh one of ``max_bytes``.

    ``0`` disables caching (every lookup misses without counting, every
    insert is a pass-through).  Returns the new cache; mainly a test and
    benchmark hook -- services configure via ``REPRO_OLH_CACHE_BYTES``.
    """
    global _default_cache
    with _default_lock:
        _default_cache = OlhHashCache(max_bytes)
        return _default_cache


def hash_cache_stats() -> Dict[str, int]:
    """Counters of the process-wide cache (for `/stats` blocks)."""
    return default_hash_cache().stats()


__all__ = [
    "DEFAULT_OLH_CACHE_BYTES",
    "OLH_CACHE_BYTES_ENV",
    "OlhHashCache",
    "configure_hash_cache",
    "default_hash_cache",
    "hash_cache_stats",
]
