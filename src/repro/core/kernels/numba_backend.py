"""Numba ``@njit(cache=True)`` implementations of the oracle kernels.

Importing this module requires numba (``pip install repro[accel]``); the
registry in :mod:`repro.core.kernels` only imports it on demand and falls
back to numpy when the import fails, so numba stays strictly optional.

Every function here must be **bit-identical** to its reference twin in
:mod:`repro.core.kernels.reference` (HRR's float accumulation agrees
exactly too: sums of +/-1 values stay far below 2**53 and are added in the
same sequential order as ``np.bincount``).  That holds because:

* all randomness is pre-drawn by the caller -- these are pure loops;
* the integer arithmetic (``(a*x + b) % P % g`` with ``a, x < 2**31``)
  never leaves int64, so compiled and vectorised evaluation agree exactly;
* float comparisons against the same pre-drawn uniforms are deterministic.

The big wins over numpy are *fusion* (one pass instead of one temporary
per operator) and, for the ``O(N * D)`` OLH decode, a ``prange`` over the
domain where every item owns its own support counter -- race-free and
deterministic because each parallel iteration writes a disjoint slot.

Python-level wrappers handle validation (numba cannot raise rich errors
cheaply) and keep the wire-facing dtypes identical to the reference
backend.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange
from numba.typed import List as NumbaList

from repro.core.kernels.reference import COLUMN_SUMS_BLOCK, HASH_PRIME


@njit(cache=True)
def _grr_perturb(items, keep, noise):
    n = items.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        if keep[i]:
            out[i] = items[i]
        else:
            lie = noise[i]
            if lie >= items[i]:
                lie += 1
            out[i] = lie
    return out


def grr_perturb(items, keep, noise):
    return _grr_perturb(
        np.ascontiguousarray(items, dtype=np.int64),
        np.ascontiguousarray(keep, dtype=np.bool_),
        np.ascontiguousarray(noise, dtype=np.int64),
    )


@njit(cache=True)
def _olh_encode(multipliers, offsets, items, num_buckets, keep, noise):
    n = items.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        true_bucket = ((multipliers[i] * items[i] + offsets[i]) % HASH_PRIME) % num_buckets
        if keep[i]:
            out[i] = true_bucket
        else:
            lie = noise[i]
            if lie >= true_bucket:
                lie += 1
            out[i] = lie
    return out


def olh_encode(multipliers, offsets, items, num_buckets, keep, noise):
    return _olh_encode(
        np.ascontiguousarray(multipliers, dtype=np.int64),
        np.ascontiguousarray(offsets, dtype=np.int64),
        np.ascontiguousarray(items, dtype=np.int64),
        np.int64(num_buckets),
        np.ascontiguousarray(keep, dtype=np.bool_),
        np.ascontiguousarray(noise, dtype=np.int64),
    )


@njit(cache=True, parallel=True)
def _olh_support(multipliers, offsets, buckets, domain_size, num_buckets):
    support = np.zeros(domain_size, dtype=np.int64)
    n = buckets.shape[0]
    # Parallel over the domain: every item x owns support[x], so the
    # prange iterations touch disjoint memory and the result does not
    # depend on the thread schedule.
    for x in prange(domain_size):
        hits = 0
        for i in range(n):
            if ((multipliers[i] * x + offsets[i]) % HASH_PRIME) % num_buckets == buckets[i]:
                hits += 1
        support[x] = hits
    return support


def olh_support(multipliers, offsets, buckets, domain_size, num_buckets, chunk):
    # ``chunk`` bounds the numpy work buffer; the compiled loop carries no
    # buffer at all, so the knob is accepted and ignored.
    return _olh_support(
        np.ascontiguousarray(multipliers, dtype=np.int64),
        np.ascontiguousarray(offsets, dtype=np.int64),
        np.ascontiguousarray(buckets, dtype=np.int64),
        np.int64(domain_size),
        np.int64(num_buckets),
    )


@njit(cache=True)
def _unary_perturb(uniforms, p_zero, items, true_uniforms, p_one):
    n, d = uniforms.shape
    out = np.empty((n, d), dtype=np.uint8)
    for i in range(n):
        for j in range(d):
            out[i, j] = np.uint8(1) if uniforms[i, j] < p_zero else np.uint8(0)
        out[i, items[i]] = np.uint8(1) if true_uniforms[i] < p_one else np.uint8(0)
    return out


def unary_perturb(uniforms, p_zero, items, true_uniforms, p_one):
    return _unary_perturb(
        np.ascontiguousarray(uniforms, dtype=np.float64),
        np.float64(p_zero),
        np.ascontiguousarray(items, dtype=np.int64),
        np.ascontiguousarray(true_uniforms, dtype=np.float64),
        np.float64(p_one),
    )


@njit(cache=True)
def _unary_sums(reports):
    n, d = reports.shape
    sums = np.zeros(d, dtype=np.int64)
    # Row-major accumulation: one streaming pass over the report matrix.
    for i in range(n):
        for j in range(d):
            sums[j] += reports[i, j]
    return sums


def unary_sums(reports):
    # No dtype coercion: the loop accumulates any integer report matrix
    # (uint8 on the wire) into int64 without an 8x-wider copy first.
    return _unary_sums(np.ascontiguousarray(reports))


@njit(cache=True)
def _hrr_encode(items, signs, indices, keep):
    n = items.shape[0]
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        v = np.uint64(items[i] & indices[i])
        # Parity of the set bits via XOR folding (matches popcount_parity).
        v ^= v >> np.uint64(32)
        v ^= v >> np.uint64(16)
        v ^= v >> np.uint64(8)
        v ^= v >> np.uint64(4)
        v ^= v >> np.uint64(2)
        v ^= v >> np.uint64(1)
        entry = 1.0 - 2.0 * np.float64(v & np.uint64(1))
        value = signs[i] * entry
        out[i] = value if keep[i] else -value
    return out


def hrr_encode(items, signs, indices, keep):
    return _hrr_encode(
        np.ascontiguousarray(items, dtype=np.int64),
        np.ascontiguousarray(signs, dtype=np.float64),
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(keep, dtype=np.bool_),
    )


@njit(cache=True)
def _hrr_value_sums(indices, values, padded_size):
    sums = np.zeros(padded_size, dtype=np.float64)
    for i in range(indices.shape[0]):
        # Same sequential input order as np.bincount, so float partial
        # sums (exact for +/-1 weights anyway) match bit-for-bit.
        sums[indices[i]] += values[i]
    out = np.empty(padded_size, dtype=np.int64)
    for j in range(padded_size):
        out[j] = np.int64(np.rint(sums[j]))
    return out


def hrr_value_sums(indices, values, padded_size):
    return _hrr_value_sums(
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(values, dtype=np.float64),
        np.int64(padded_size),
    )


@njit(cache=True)
def _categorical_counts(reports, domain_size):
    counts = np.zeros(domain_size, dtype=np.int64)
    bad = 0
    for i in range(reports.shape[0]):
        value = reports[i]
        if value < 0 or value >= domain_size:
            bad += 1
        else:
            counts[value] += 1
    return counts, bad


def categorical_counts(reports, domain_size):
    reports = np.asarray(reports, dtype=np.int64)
    if reports.ndim != 1:
        raise ValueError(f"reports must be a 1-D array, got shape {reports.shape}")
    counts, bad = _categorical_counts(
        np.ascontiguousarray(reports), np.int64(domain_size)
    )
    if bad:
        raise ValueError(
            f"reports contain values outside the domain of size {domain_size}"
        )
    return counts


@njit(cache=True, parallel=True, nogil=True)
def _column_sums(vectors, out, block):
    length = out.shape[0]
    k = len(vectors)
    n_blocks = (length + block - 1) // block
    # Parallel over disjoint column blocks (each prange iteration owns
    # its out slice, so the result is schedule-independent), nogil so the
    # gateway executor overlaps query pushdown with ingest threads.
    for b in prange(n_blocks):
        start = b * block
        stop = min(start + block, length)
        for j in range(start, stop):
            out[j] = 0
        for i in range(k):
            vector = vectors[i]
            for j in range(start, stop):
                out[j] += vector[j]
    return out


def column_sums(vectors, out=None):
    arrays = []
    for vector in vectors:
        array = np.ascontiguousarray(vector, dtype=np.int64).reshape(-1)
        # Normalize every element to a *readonly* view: mmap-backed
        # inputs are already readonly, and a typed.List must hold one
        # consistent array type.
        view = array.view()
        view.flags.writeable = False
        arrays.append(view)
    if not arrays:
        if out is None:
            raise ValueError("column_sums needs at least one vector or an out=")
        out[...] = 0
        return out
    length = arrays[0].shape[0]
    for array in arrays[1:]:
        if array.shape[0] != length:
            raise ValueError(
                f"column_sums vectors disagree on length: {array.shape[0]} "
                f"!= {length}"
            )
    if out is None:
        out = np.zeros(length, dtype=np.int64)
    elif out.shape != (length,) or out.dtype != np.int64:
        raise ValueError(
            f"column_sums out= must be int64 of shape ({length},), got "
            f"{out.dtype} {out.shape}"
        )
    typed = NumbaList()
    for array in arrays:
        typed.append(array)
    return _column_sums(typed, out, np.int64(COLUMN_SUMS_BLOCK))


KERNELS = {
    "grr_perturb": grr_perturb,
    "olh_encode": olh_encode,
    "olh_support": olh_support,
    "unary_perturb": unary_perturb,
    "unary_sums": unary_sums,
    "hrr_encode": hrr_encode,
    "hrr_value_sums": hrr_value_sums,
    "categorical_counts": categorical_counts,
    "column_sums": column_sums,
}
