"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The more
specific subclasses mirror the kinds of mis-use that are possible with the
paper's protocols: malformed domains, invalid privacy budgets, out-of-bounds
range queries and calling protocol objects out of order.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDomainError(ReproError, ValueError):
    """The requested discrete domain is malformed.

    Raised when a domain size is non-positive, when a protocol requires a
    power-of-two (or power-of-``B``) domain and the caller supplied one that
    cannot be padded, or when input data contains items outside ``[0, D)``.
    """


class InvalidPrivacyBudgetError(ReproError, ValueError):
    """The privacy budget ``epsilon`` is not a positive finite number."""


class InvalidRangeError(ReproError, ValueError):
    """A range query ``[a, b]`` is malformed (``a > b`` or out of bounds)."""


class ProtocolUsageError(ReproError, RuntimeError):
    """A protocol object was used out of order.

    For example, asking an estimator for a range answer before any reports
    have been aggregated, or aggregating reports produced by a different
    protocol configuration.
    """


class InvalidWindowError(ProtocolUsageError, ValueError):
    """An engine window selection is malformed or unsatisfiable.

    Raised by :func:`repro.engine.windows.resolve_window` for empty
    selections, unknown epoch keys, and ``last:K`` windows asking for more
    epochs than the engine holds.  Subclasses both
    :class:`ProtocolUsageError` (so existing engine error handling keeps
    working) and ``ValueError`` (window arguments are caller input).
    """
