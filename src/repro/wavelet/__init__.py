"""Discrete Haar Transform based range queries (Section 4.6).

:class:`HaarHRR` is the paper's wavelet protocol; the pure transform
utilities in :mod:`repro.wavelet.haar` are exposed for reuse and testing.
"""

from repro.wavelet.haar import (
    HaarCoefficients,
    evaluate_range_from_coefficients,
    haar_matrix,
    haar_transform,
    inverse_haar_transform,
    leaf_membership,
    range_coefficient_weights,
)
from repro.wavelet.haar_hrr import HaarClient, HaarEstimator, HaarHRR, HaarServer

__all__ = [
    "HaarCoefficients",
    "haar_transform",
    "inverse_haar_transform",
    "haar_matrix",
    "leaf_membership",
    "range_coefficient_weights",
    "evaluate_range_from_coefficients",
    "HaarClient",
    "HaarEstimator",
    "HaarHRR",
    "HaarServer",
]
