"""The Discrete Haar Transform (DHT) over a power-of-two domain.

The DHT (Section 4.6, Figure 3 of the paper) recursively averages and
differences the frequency vector.  We use the paper's convention:

* the 0-th ("smooth") coefficient is ``c_0 = (1/sqrt(D)) * sum_z f_z``;
* a detail coefficient at *height* ``j`` (leaves have height 0, the single
  coarsest detail coefficient has height ``h = log2 D``) for node ``k`` is
  ``c_{j,k} = (C_left - C_right) / 2^{j/2}`` where ``C_left``/``C_right``
  are the sums of ``f`` over the left/right halves of the node's interval.

Reconstruction of a leaf value is
``f_z = c_0 / sqrt(D) + sum_j s_j(z) * c_{j, anc_j(z)} / 2^{j/2}`` with
``s_j(z) = +1`` when ``z`` lies in the left subtree of its height-``j``
ancestor and ``-1`` otherwise -- exactly the rows of the matrix in the
paper's Figure 3.

The transform, its inverse and the explicit matrix are exact linear maps; no
privacy is involved here.  :class:`HaarCoefficients` is the container the
HaarHRR protocol fills with *estimated* coefficients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.types import is_power_of


@dataclass
class HaarCoefficients:
    """Haar coefficients of a length-``D`` vector (``D`` a power of two).

    Attributes
    ----------
    smooth:
        The 0-th coefficient ``c_0``.
    details:
        ``details[j - 1]`` holds the detail coefficients at height ``j``
        (length ``D / 2^j``), for ``j = 1 .. log2(D)``.
    """

    smooth: float
    details: List[np.ndarray]

    @property
    def domain_size(self) -> int:
        """The length of the vector these coefficients describe."""
        if not self.details:
            return 1
        return 2 * len(self.details[0])

    @property
    def height(self) -> int:
        """Number of detail levels ``h = log2(D)``."""
        return len(self.details)

    def copy(self) -> "HaarCoefficients":
        """Deep copy."""
        return HaarCoefficients(
            smooth=float(self.smooth),
            details=[np.array(level, copy=True) for level in self.details],
        )

    def as_flat_array(self) -> np.ndarray:
        """Coefficients flattened in the paper's Figure 3 column order.

        Order: ``c_0`` first, then detail heights from the coarsest
        (``j = h``) down to the finest (``j = 1``).
        """
        parts = [np.array([self.smooth])]
        for level in reversed(self.details):
            parts.append(np.asarray(level, dtype=np.float64))
        return np.concatenate(parts)


def _check_length(length: int) -> int:
    if not is_power_of(2, length):
        raise ValueError(f"Haar transform length must be a power of two, got {length}")
    return int(math.log2(length))


def haar_transform(values: Sequence[float]) -> HaarCoefficients:
    """Forward DHT of a length ``D = 2^h`` vector."""
    vector = np.asarray(values, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    height = _check_length(len(vector))
    sums = vector.copy()
    details: List[np.ndarray] = []
    for j in range(1, height + 1):
        left = sums[0::2]
        right = sums[1::2]
        details.append((left - right) / (2.0 ** (j / 2.0)))
        sums = left + right
    smooth = float(sums[0] / math.sqrt(len(vector)))
    return HaarCoefficients(smooth=smooth, details=details)


def inverse_haar_transform(coefficients: HaarCoefficients) -> np.ndarray:
    """Invert the DHT back to the original length-``D`` vector."""
    domain_size = coefficients.domain_size
    height = coefficients.height
    sums = np.array([coefficients.smooth * math.sqrt(domain_size)])
    for j in range(height, 0, -1):
        detail = np.asarray(coefficients.details[j - 1], dtype=np.float64)
        if len(detail) != len(sums):
            raise ValueError(
                f"detail level {j} has length {len(detail)}, expected {len(sums)}"
            )
        scaled = detail * (2.0 ** (j / 2.0))
        left = (sums + scaled) / 2.0
        right = (sums - scaled) / 2.0
        expanded = np.empty(2 * len(sums))
        expanded[0::2] = left
        expanded[1::2] = right
        sums = expanded
    return sums


def haar_matrix(domain_size: int) -> np.ndarray:
    """The ``D x D`` reconstruction matrix of the paper's Figure 3.

    Row ``z`` contains the weights such that
    ``f_z = haar_matrix(D)[z] @ coefficients.as_flat_array()``.
    """
    height = _check_length(domain_size)
    matrix = np.zeros((domain_size, domain_size))
    matrix[:, 0] = 1.0 / math.sqrt(domain_size)
    column = 1
    for j in range(height, 0, -1):
        num_nodes = domain_size // (2**j)
        span = 2**j
        for node in range(num_nodes):
            start = node * span
            half = span // 2
            weight = 1.0 / (2.0 ** (j / 2.0))
            matrix[start : start + half, column] = weight
            matrix[start + half : start + span, column] = -weight
            column += 1
    return matrix


def leaf_membership(items: np.ndarray, height_j: int) -> tuple:
    """Ancestor node index and sign of each item at detail height ``j``.

    ``sign`` is ``+1`` when the item falls in the left half of its ancestor's
    interval and ``-1`` otherwise -- the per-user contribution to the Haar
    coefficient (before the ``2^{j/2}`` scaling).
    """
    if height_j < 1:
        raise ValueError(f"detail height must be >= 1, got {height_j}")
    items = np.asarray(items, dtype=np.int64)
    span = 2**height_j
    nodes = items // span
    in_left = (items % span) < (span // 2)
    signs = np.where(in_left, 1.0, -1.0)
    return nodes, signs


def range_coefficient_weights(
    left: int, right: int, domain_size: int
) -> HaarCoefficients:
    """Weights to combine Haar coefficients into the answer of ``[left, right]``.

    The answer to a range query is the inner product of these weights with
    the coefficient estimates: the smooth coefficient receives weight
    ``r / sqrt(D)`` and a detail node at height ``j`` receives
    ``(overlap_left - overlap_right) / 2^{j/2}`` where the overlaps count how
    many of the range's items fall in the node's left/right halves.  Only
    nodes cut by the range carry non-zero weight (at most two per level), so
    this gives the ``O(log D)`` evaluation path of Section 4.6.
    """
    height = _check_length(domain_size)
    if left < 0 or right < left or right >= domain_size:
        raise ValueError(f"invalid range [{left}, {right}] for domain {domain_size}")
    length = right - left + 1
    smooth_weight = length / math.sqrt(domain_size)
    details: List[np.ndarray] = []
    for j in range(1, height + 1):
        span = 2**j
        half = span // 2
        num_nodes = domain_size // span
        weights = np.zeros(num_nodes)
        first_node = left // span
        last_node = right // span
        for node in (first_node, last_node):
            if node < first_node or node > last_node:
                continue
            start = node * span
            # Overlap of the range with the node's left and right halves.
            overlap_left = max(0, min(right, start + half - 1) - max(left, start) + 1)
            overlap_right = max(0, min(right, start + span - 1) - max(left, start + half) + 1)
            weights[node] = (overlap_left - overlap_right) / (2.0 ** (j / 2.0))
        details.append(weights)
    return HaarCoefficients(smooth=smooth_weight, details=details)


def evaluate_range_from_coefficients(
    coefficients: HaarCoefficients, left: int, right: int
) -> float:
    """Answer a range query directly from (estimated) Haar coefficients."""
    weights = range_coefficient_weights(left, right, coefficients.domain_size)
    answer = weights.smooth * coefficients.smooth
    for weight_level, coeff_level in zip(weights.details, coefficients.details):
        answer += float(np.dot(weight_level, coeff_level))
    return answer


def evaluate_ranges_from_coefficients(
    coefficients: HaarCoefficients, lefts: np.ndarray, rights: np.ndarray
) -> np.ndarray:
    """Answer an array of range queries directly from Haar coefficients.

    A range cuts at most two detail nodes per height (its left and right
    boundary nodes; interior nodes see both halves equally and carry zero
    weight), so an entire workload is answered with ``O(h)`` vectorised
    gathers into the coefficient arrays -- the batch form of
    :func:`evaluate_range_from_coefficients`, accumulating the identical
    per-height terms in the identical order.

    ``lefts``/``rights`` are inclusive endpoints in ``[0, domain_size)``;
    callers validate them (estimators do so in one vectorised pass).
    """
    domain_size = coefficients.domain_size
    height = coefficients.height
    lefts = np.asarray(lefts, dtype=np.int64).reshape(-1)
    rights = np.asarray(rights, dtype=np.int64).reshape(-1)
    answers = (rights - lefts + 1) / math.sqrt(domain_size) * coefficients.smooth
    for j in range(1, height + 1):
        detail = np.asarray(coefficients.details[j - 1], dtype=np.float64)
        span = 2**j
        half = span // 2
        scale = 1.0 / (2.0 ** (j / 2.0))
        first = lefts // span
        last = rights // span

        def boundary_weight(nodes: np.ndarray) -> np.ndarray:
            start = nodes * span
            overlap_left = np.maximum(
                0, np.minimum(rights, start + half - 1) - np.maximum(lefts, start) + 1
            )
            overlap_right = np.maximum(
                0,
                np.minimum(rights, start + span - 1) - np.maximum(lefts, start + half) + 1,
            )
            return (overlap_left - overlap_right) * scale

        answers += boundary_weight(first) * detail[first]
        distinct = last != first
        answers += np.where(distinct, boundary_weight(last) * detail[last], 0.0)
    return answers
