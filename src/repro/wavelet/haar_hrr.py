"""HaarHRR: range queries via perturbed Haar coefficients (Section 4.6).

Each user holding item ``z`` has, at every detail height ``j`` of the Haar
tree, exactly one non-zero coefficient contribution: ``+1`` or ``-1`` (after
the paper's rescaling) at the node that is ``z``'s ancestor at that height.
The protocol:

1. the user samples a height ``j`` uniformly from ``{1, ..., h}``;
2. she forms the signed one-hot vector over the ``D / 2^j`` nodes of that
   height and perturbs it with Hadamard Randomized Response, reporting a
   single +/-1 value plus the sampled height and Hadamard index;
3. the aggregator debiases the reports per height, obtaining unbiased
   estimates of the signed fraction at every node, rescales them by
   ``2^{-j/2}`` into Haar coefficient estimates, and hard-codes the smooth
   coefficient to ``1 / sqrt(D)`` (fractions always sum to one);
4. range queries are answered either by inverting the transform (the
   estimator exposes full frequency estimates, so prefix sums answer any
   range) or directly from the at-most-``2h`` coefficients cut by the range.

Because the Haar coefficients are an orthogonal, non-redundant description
of the data, the estimator is consistent by construction and no
post-processing is required -- one of the paper's selling points for the
wavelet approach.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.decomposition import (
    DecomposedRangeQueryProtocol,
    HaarDecomposition,
)
from repro.core.postprocess import HAAR, PipelineLike, resolve_postprocess
from repro.core.protocol import RangeQueryEstimator, RangeLike, _as_range
from repro.core.session import (
    AccumulatorState,
    DecompositionClient,
    DecompositionServer,
)
from repro.core.types import Domain, next_power_of
from repro.frequency_oracles.base import standard_oracle_variance
from repro.frequency_oracles.hrr import HadamardRandomizedResponse
from repro.wavelet.haar import (
    HaarCoefficients,
    evaluate_range_from_coefficients,
    evaluate_ranges_from_coefficients,
    inverse_haar_transform,
)


class HaarEstimator(RangeQueryEstimator):
    """Estimated Haar coefficients with query evaluation helpers."""

    def __init__(
        self,
        domain_size: int,
        padded_size: int,
        coefficients: HaarCoefficients,
        level_user_counts: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(Domain(domain_size))
        self._padded = int(padded_size)
        self._coefficients = coefficients
        self._level_user_counts = (
            None if level_user_counts is None else np.asarray(level_user_counts)
        )
        self._frequencies: Optional[np.ndarray] = None

    @property
    def coefficients(self) -> HaarCoefficients:
        """The estimated Haar coefficients (copy)."""
        return self._coefficients.copy()

    @property
    def padded_size(self) -> int:
        """Power-of-two domain length the transform was taken over."""
        return self._padded

    @property
    def level_user_counts(self) -> Optional[np.ndarray]:
        """Users assigned to each detail height (index 0 unused)."""
        return None if self._level_user_counts is None else self._level_user_counts.copy()

    def estimated_frequencies(self) -> np.ndarray:
        """Frequency estimates from inverting the Haar transform."""
        if self._frequencies is None:
            reconstructed = inverse_haar_transform(self._coefficients)
            self._frequencies = reconstructed[: self.domain_size]
        return self._frequencies.copy()

    def range_query_from_coefficients(self, query: RangeLike) -> float:
        """O(log D) evaluation using only the coefficients cut by the range.

        Numerically identical (up to float rounding) to the prefix-sum path
        because the Haar representation is exactly invertible.
        """
        spec = _as_range(query).validate_for_domain(self.domain_size)
        return evaluate_range_from_coefficients(
            self._coefficients, spec.left, spec.right
        )

    def range_queries_from_coefficients(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> np.ndarray:
        """Batch form of :meth:`range_query_from_coefficients`.

        Answers an entire ``(lefts, rights)`` workload with ``O(h)``
        vectorised gathers into the coefficient arrays (a range cuts at
        most two detail nodes per height), never inverting the transform.
        Prefer this over :meth:`range_queries` when only a few queries are
        asked of a huge domain; for large workloads the inherited
        prefix-sum path amortises the one-time ``O(D)`` inversion instead.
        """
        lefts, rights = self._validate_query_arrays(lefts, rights)
        if not lefts.size:
            return np.zeros(0)
        return evaluate_ranges_from_coefficients(self._coefficients, lefts, rights)


class HaarClient(DecompositionClient):
    """User-side encoder of HaarHRR: sample a height, HRR-perturb the sign.

    Thin instantiation of the generic engine on a
    :class:`~repro.core.decomposition.HaarDecomposition`.
    """


class HaarServer(DecompositionServer):
    """Aggregator of HaarHRR: one HRR accumulator per detail height.

    ``finalize`` rebuilds the coefficient tree from whatever state it
    holds -- a live server or a merged multi-epoch window state
    (``protocol.estimator_from_state``), since the per-height signed sums
    merge exactly.
    """


class HaarHRR(DecomposedRangeQueryProtocol):
    """The HaarHRR range-query protocol.

    Parameters
    ----------
    domain_size:
        Domain size ``D``; padded to the next power of two internally.
    epsilon:
        Privacy budget.
    level_probabilities:
        Optional sampling distribution over detail heights ``1..h``; uniform
        (the variance-optimal choice) by default.
    postprocess:
        Post-processing pipeline applied to the estimated coefficients at
        assembly time -- ``"none"`` (default; the Haar representation is
        consistent by construction) or ``"haar_threshold"`` (zero detail
        coefficients below their noise floor before inversion).
    """

    name = "HaarHRR"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        level_probabilities: Optional[np.ndarray] = None,
        postprocess: PipelineLike = None,
    ) -> None:
        super().__init__(domain_size, epsilon)
        # Validate eagerly so bad pipeline strings fail at construction.
        self._pipeline = resolve_postprocess(postprocess, HAAR)
        self._postprocess_arg = None if postprocess is None else self._pipeline.spec
        self._padded = next_power_of(2, self.domain_size)
        self._height = int(math.log2(self._padded)) if self._padded > 1 else 0
        if self._height == 0:
            raise ValueError("domain of size 1 does not need a range-query protocol")
        # Keep the caller's raw argument so spec() can rebuild an identical
        # protocol (re-normalizing resolved values would drift by ulps).
        self._level_probabilities_arg = (
            None
            if level_probabilities is None
            else [float(value) for value in level_probabilities]
        )
        if level_probabilities is None:
            self._level_probabilities = np.full(self._height, 1.0 / self._height)
        else:
            probs = np.asarray(level_probabilities, dtype=np.float64)
            if len(probs) != self._height or np.any(probs < 0):
                raise ValueError(
                    f"level_probabilities must be {self._height} non-negative values"
                )
            self._level_probabilities = probs / probs.sum()

    @property
    def padded_size(self) -> int:
        """The power-of-two transform length."""
        return self._padded

    @property
    def height(self) -> int:
        """Number of detail heights ``h = log2(padded_size)``."""
        return self._height

    @property
    def level_probabilities(self) -> np.ndarray:
        """Sampling distribution over detail heights."""
        return self._level_probabilities.copy()

    def _smooth_coefficient(self) -> float:
        # Fractions sum to one, so c_0 = 1 / sqrt(D); no perturbation needed.
        return 1.0 / math.sqrt(self._padded)

    def _height_oracle(self, height_j: int) -> HadamardRandomizedResponse:
        num_nodes = self._padded // (2**height_j)
        return HadamardRandomizedResponse(num_nodes, self.epsilon)

    # ------------------------------------------------------------------ #
    # client / server roles
    # ------------------------------------------------------------------ #
    @property
    def postprocess(self) -> Optional[str]:
        """Registry spelling of the post-processing pipeline (None = none)."""
        return self._postprocess_arg

    def _build_decomposition(self) -> HaarDecomposition:
        return HaarDecomposition(
            self.domain,
            self._padded,
            self._height,
            self._height_oracle,
            self._level_probabilities,
            self._smooth_coefficient(),
            postprocess=self._pipeline,
            epsilon=self.epsilon,
        )

    def client(self) -> HaarClient:
        return HaarClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> HaarServer:
        return HaarServer(self, state)

    def spec(self) -> dict:
        spec = {
            "name": "haar",
            "domain_size": self.domain_size,
            "epsilon": self.epsilon,
            "level_probabilities": self._level_probabilities_arg,
        }
        if self._postprocess_arg is not None:
            # Written only when set, so pre-pipeline specs (and the states
            # that embed them) stay byte-identical.
            spec["postprocess"] = self._postprocess_arg
        return spec

    # ------------------------------------------------------------------ #
    # theory
    # ------------------------------------------------------------------ #
    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Eq. (3): ``V_r = 0.5 * log2(D)^2 * V_F`` (independent of ``r``)."""
        if range_length < 1 or range_length > self._padded:
            raise ValueError(
                f"range_length must be in [1, {self._padded}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        psi = standard_oracle_variance(self.epsilon)
        return 0.5 * (self._height**2) * psi / n_users
