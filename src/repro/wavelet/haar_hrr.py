"""HaarHRR: range queries via perturbed Haar coefficients (Section 4.6).

Each user holding item ``z`` has, at every detail height ``j`` of the Haar
tree, exactly one non-zero coefficient contribution: ``+1`` or ``-1`` (after
the paper's rescaling) at the node that is ``z``'s ancestor at that height.
The protocol:

1. the user samples a height ``j`` uniformly from ``{1, ..., h}``;
2. she forms the signed one-hot vector over the ``D / 2^j`` nodes of that
   height and perturbs it with Hadamard Randomized Response, reporting a
   single +/-1 value plus the sampled height and Hadamard index;
3. the aggregator debiases the reports per height, obtaining unbiased
   estimates of the signed fraction at every node, rescales them by
   ``2^{-j/2}`` into Haar coefficient estimates, and hard-codes the smooth
   coefficient to ``1 / sqrt(D)`` (fractions always sum to one);
4. range queries are answered either by inverting the transform (the
   estimator exposes full frequency estimates, so prefix sums answer any
   range) or directly from the at-most-``2h`` coefficients cut by the range.

Because the Haar coefficients are an orthogonal, non-redundant description
of the data, the estimator is consistent by construction and no
post-processing is required -- one of the paper's selling points for the
wavelet approach.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol, RangeLike, _as_range
from repro.core.rng import RngLike, ensure_rng
from repro.core.session import (
    AccumulatorState,
    CompositeAccumulator,
    HaarReport,
    ProtocolClient,
    ProtocolServer,
    Report,
    iter_level_payloads,
)
from repro.core.types import Domain, next_power_of
from repro.frequency_oracles.base import standard_oracle_variance
from repro.frequency_oracles.hrr import HadamardRandomizedResponse
from repro.wavelet.haar import (
    HaarCoefficients,
    evaluate_range_from_coefficients,
    evaluate_ranges_from_coefficients,
    inverse_haar_transform,
    leaf_membership,
)


class HaarEstimator(RangeQueryEstimator):
    """Estimated Haar coefficients with query evaluation helpers."""

    def __init__(
        self,
        domain_size: int,
        padded_size: int,
        coefficients: HaarCoefficients,
        level_user_counts: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(Domain(domain_size))
        self._padded = int(padded_size)
        self._coefficients = coefficients
        self._level_user_counts = (
            None if level_user_counts is None else np.asarray(level_user_counts)
        )
        self._frequencies: Optional[np.ndarray] = None

    @property
    def coefficients(self) -> HaarCoefficients:
        """The estimated Haar coefficients (copy)."""
        return self._coefficients.copy()

    @property
    def padded_size(self) -> int:
        """Power-of-two domain length the transform was taken over."""
        return self._padded

    @property
    def level_user_counts(self) -> Optional[np.ndarray]:
        """Users assigned to each detail height (index 0 unused)."""
        return None if self._level_user_counts is None else self._level_user_counts.copy()

    def estimated_frequencies(self) -> np.ndarray:
        """Frequency estimates from inverting the Haar transform."""
        if self._frequencies is None:
            reconstructed = inverse_haar_transform(self._coefficients)
            self._frequencies = reconstructed[: self.domain_size]
        return self._frequencies.copy()

    def range_query_from_coefficients(self, query: RangeLike) -> float:
        """O(log D) evaluation using only the coefficients cut by the range.

        Numerically identical (up to float rounding) to the prefix-sum path
        because the Haar representation is exactly invertible.
        """
        spec = _as_range(query).validate_for_domain(self.domain_size)
        return evaluate_range_from_coefficients(
            self._coefficients, spec.left, spec.right
        )

    def range_queries_from_coefficients(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> np.ndarray:
        """Batch form of :meth:`range_query_from_coefficients`.

        Answers an entire ``(lefts, rights)`` workload with ``O(h)``
        vectorised gathers into the coefficient arrays (a range cuts at
        most two detail nodes per height), never inverting the transform.
        Prefer this over :meth:`range_queries` when only a few queries are
        asked of a huge domain; for large workloads the inherited
        prefix-sum path amortises the one-time ``O(D)`` inversion instead.
        """
        lefts, rights = self._validate_query_arrays(lefts, rights)
        if not lefts.size:
            return np.zeros(0)
        return evaluate_ranges_from_coefficients(self._coefficients, lefts, rights)


class HaarClient(ProtocolClient):
    """User-side encoder of HaarHRR: sample a height, HRR-perturb the sign."""

    def __init__(self, protocol: "HaarHRR") -> None:
        super().__init__(protocol)
        self._oracles = {
            height_j: protocol._height_oracle(height_j)
            for height_j in range(1, protocol.height + 1)
        }

    def encode_batch(self, items: np.ndarray, rng: RngLike = None) -> HaarReport:
        protocol = self._protocol
        rng = ensure_rng(rng)
        items = protocol.domain.validate_items(np.asarray(items))
        height = protocol.height
        level_user_counts = np.zeros(height + 1, dtype=np.int64)
        payloads = {}
        if len(items) == 0:
            return HaarReport(payloads, level_user_counts, n_users=0)
        assignments = rng.choice(
            np.arange(1, height + 1), size=len(items), p=protocol.level_probabilities
        )
        for height_j in range(1, height + 1):
            mask = assignments == height_j
            count = int(mask.sum())
            level_user_counts[height_j] = count
            if count == 0:
                continue
            nodes, signs = leaf_membership(items[mask], height_j)
            payloads[height_j] = self._oracles[height_j].privatize_signed(
                nodes, signs, rng=rng
            )
        return HaarReport(payloads, level_user_counts, n_users=len(items))


class HaarServer(ProtocolServer):
    """Aggregator of HaarHRR: one HRR accumulator per detail height."""

    def __init__(
        self, protocol: "HaarHRR", state: Optional[AccumulatorState] = None
    ) -> None:
        self._oracles = {
            height_j: protocol._height_oracle(height_j)
            for height_j in range(1, protocol.height + 1)
        }
        super().__init__(protocol, state)

    def _empty_state(self) -> CompositeAccumulator:
        return CompositeAccumulator(
            "haar",
            {"protocol": self._protocol.spec()},
            [
                self._oracles[height_j].make_accumulator()
                for height_j in range(1, self._protocol.height + 1)
            ],
        )

    def _ingest_one(self, report: Report) -> None:
        if not isinstance(report, HaarReport):
            raise ProtocolUsageError(
                f"haar server cannot ingest a {type(report).__name__}"
            )
        if report.n_users <= 0:
            return
        oracles = self._oracles
        children = self._state.children
        level_user_counts = report.level_user_counts
        for height_j, payload in iter_level_payloads(report.height_payloads):
            oracles[height_j].accumulate(
                children[height_j - 1],
                payload,
                n_users=int(level_user_counts[height_j]),
            )
        self._state.n_users += report.n_users

    def finalize(self) -> "HaarEstimator":
        self._require_reports()
        protocol = self._protocol
        details: List[np.ndarray] = []
        level_user_counts = np.zeros(protocol.height + 1, dtype=np.int64)
        for height_j in range(1, protocol.height + 1):
            accumulator = self._state.children[height_j - 1]
            level_user_counts[height_j] = accumulator.n_reports
            num_nodes = protocol.padded_size // (2**height_j)
            if accumulator.n_reports == 0:
                details.append(np.zeros(num_nodes))
                continue
            signed_fractions = self._oracles[height_j].finalize(accumulator)
            details.append(signed_fractions / (2.0 ** (height_j / 2.0)))
        coefficients = HaarCoefficients(
            smooth=protocol._smooth_coefficient(), details=details
        )
        return HaarEstimator(
            protocol.domain_size, protocol.padded_size, coefficients, level_user_counts
        )


class HaarHRR(RangeQueryProtocol):
    """The HaarHRR range-query protocol.

    Parameters
    ----------
    domain_size:
        Domain size ``D``; padded to the next power of two internally.
    epsilon:
        Privacy budget.
    level_probabilities:
        Optional sampling distribution over detail heights ``1..h``; uniform
        (the variance-optimal choice) by default.
    """

    name = "HaarHRR"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        level_probabilities: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(domain_size, epsilon)
        self._padded = next_power_of(2, self.domain_size)
        self._height = int(math.log2(self._padded)) if self._padded > 1 else 0
        if self._height == 0:
            raise ValueError("domain of size 1 does not need a range-query protocol")
        # Keep the caller's raw argument so spec() can rebuild an identical
        # protocol (re-normalizing resolved values would drift by ulps).
        self._level_probabilities_arg = (
            None
            if level_probabilities is None
            else [float(value) for value in level_probabilities]
        )
        if level_probabilities is None:
            self._level_probabilities = np.full(self._height, 1.0 / self._height)
        else:
            probs = np.asarray(level_probabilities, dtype=np.float64)
            if len(probs) != self._height or np.any(probs < 0):
                raise ValueError(
                    f"level_probabilities must be {self._height} non-negative values"
                )
            self._level_probabilities = probs / probs.sum()

    @property
    def padded_size(self) -> int:
        """The power-of-two transform length."""
        return self._padded

    @property
    def height(self) -> int:
        """Number of detail heights ``h = log2(padded_size)``."""
        return self._height

    @property
    def level_probabilities(self) -> np.ndarray:
        """Sampling distribution over detail heights."""
        return self._level_probabilities.copy()

    def _smooth_coefficient(self) -> float:
        # Fractions sum to one, so c_0 = 1 / sqrt(D); no perturbation needed.
        return 1.0 / math.sqrt(self._padded)

    def _height_oracle(self, height_j: int) -> HadamardRandomizedResponse:
        num_nodes = self._padded // (2**height_j)
        return HadamardRandomizedResponse(num_nodes, self.epsilon)

    # ------------------------------------------------------------------ #
    # client / server roles
    # ------------------------------------------------------------------ #
    def client(self) -> HaarClient:
        return HaarClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> HaarServer:
        return HaarServer(self, state)

    def spec(self) -> dict:
        return {
            "name": "haar",
            "domain_size": self.domain_size,
            "epsilon": self.epsilon,
            "level_probabilities": self._level_probabilities_arg,
        }

    # ------------------------------------------------------------------ #
    # statistically equivalent aggregate simulation
    # ------------------------------------------------------------------ #
    def run_simulated(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> HaarEstimator:
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must have length {self.domain_size}, got {counts.shape}"
            )
        if counts.sum() <= 0:
            raise ProtocolUsageError("cannot simulate the protocol with zero users")
        counts = np.rint(counts).astype(np.int64)
        padded_counts = np.zeros(self._padded, dtype=np.int64)
        padded_counts[: self.domain_size] = counts

        per_level = self._split_counts_across_levels(padded_counts, rng)
        details: List[np.ndarray] = []
        level_user_counts = np.zeros(self._height + 1, dtype=np.int64)
        for height_j in range(1, self._height + 1):
            level_counts = per_level[height_j - 1]
            n_level = int(level_counts.sum())
            level_user_counts[height_j] = n_level
            num_nodes = self._padded // (2**height_j)
            if n_level == 0:
                details.append(np.zeros(num_nodes))
                continue
            span = 2**height_j
            half = span // 2
            reshaped = level_counts.reshape(num_nodes, span)
            positive = reshaped[:, :half].sum(axis=1)
            negative = reshaped[:, half:].sum(axis=1)
            oracle = self._height_oracle(height_j)
            signed_fractions = oracle.estimate_from_signed_counts(
                positive, negative, rng=rng
            )
            details.append(signed_fractions / (2.0 ** (height_j / 2.0)))
        coefficients = HaarCoefficients(smooth=self._smooth_coefficient(), details=details)
        return HaarEstimator(
            self.domain_size, self._padded, coefficients, level_user_counts
        )

    def _split_counts_across_levels(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Multinomially split each item's user count across detail heights."""
        remaining = counts.copy()
        remaining_prob = 1.0
        per_level: List[np.ndarray] = []
        for level in range(self._height):
            prob = self._level_probabilities[level]
            if remaining_prob <= 0:
                take = np.zeros_like(remaining)
            elif level == self._height - 1:
                take = remaining.copy()
            else:
                take = rng.binomial(remaining, min(1.0, prob / remaining_prob))
            per_level.append(take.astype(np.int64))
            remaining = remaining - take
            remaining_prob -= prob
        return per_level

    # ------------------------------------------------------------------ #
    # theory
    # ------------------------------------------------------------------ #
    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Eq. (3): ``V_r = 0.5 * log2(D)^2 * V_F`` (independent of ``r``)."""
        if range_length < 1 or range_length > self._padded:
            raise ValueError(
                f"range_length must be in [1, {self._padded}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        psi = standard_oracle_variance(self.epsilon)
        return 0.5 * (self._height**2) * psi / n_users
