"""Centralized-DP baselines used by the Figure 7 comparison."""

from repro.centralized.hierarchical import CentralizedHierarchical
from repro.centralized.laplace import (
    laplace_mechanism,
    laplace_noise_scale,
    laplace_variance,
)
from repro.centralized.wavelet import CentralizedWavelet, haar_l1_sensitivity

__all__ = [
    "CentralizedHierarchical",
    "CentralizedWavelet",
    "haar_l1_sensitivity",
    "laplace_mechanism",
    "laplace_noise_scale",
    "laplace_variance",
]
