"""Centralized-DP wavelet mechanism ("Privelet", Xiao et al. 2011).

The trusted aggregator computes the exact Haar coefficients of the count
vector and adds Laplace noise to each of them.  One user changes a single
leaf count by one, which changes the smooth coefficient by ``1/sqrt(D)``
and the detail coefficient at height ``j`` on the user's root-to-leaf path
by ``1 / 2^{j/2}``.

Two noise-allocation strategies are provided:

* ``"weighted"`` (default, Privelet-style): the budget is split evenly over
  the ``h`` detail levels and each level's noise is calibrated to its own
  sensitivity ``2^{-j/2}``, i.e. coefficient at height ``j`` receives
  ``Laplace(h * 2^{-j/2} / epsilon)``.  Coarse coefficients, which carry
  large weights in range answers, get proportionally small noise -- the
  essence of Xiao et al.'s weighted mechanism, and what keeps the range
  error polylogarithmic in ``D``.
* ``"uniform"``: every coefficient receives ``Laplace(S / epsilon)`` where
  ``S`` is the total L1 sensitivity.  Simpler, still epsilon-DP, but its
  range error grows with the range length; kept as an ablation of why the
  weighting matters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain, PrivacyParams, next_power_of
from repro.wavelet.haar import HaarCoefficients, haar_transform
from repro.wavelet.haar_hrr import HaarEstimator


def haar_l1_sensitivity(domain_size: int) -> float:
    """L1 sensitivity of the Haar coefficient vector to one user's item."""
    padded = next_power_of(2, domain_size)
    height = int(math.log2(padded)) if padded > 1 else 0
    return 1.0 / math.sqrt(padded) + sum(2.0 ** (-j / 2.0) for j in range(1, height + 1))


#: Supported noise-allocation strategies.
ALLOCATIONS = ("weighted", "uniform")


class CentralizedWavelet:
    """Centralized Laplace perturbation of Haar coefficients."""

    def __init__(
        self, domain_size: int, epsilon: float, allocation: str = "weighted"
    ) -> None:
        if allocation not in ALLOCATIONS:
            raise ValueError(
                f"allocation must be one of {ALLOCATIONS}, got {allocation!r}"
            )
        self._domain = Domain(int(domain_size))
        self._privacy = PrivacyParams(float(epsilon))
        self._padded = next_power_of(2, self._domain.size)
        self._height = int(math.log2(self._padded)) if self._padded > 1 else 0
        self._sensitivity = haar_l1_sensitivity(self._domain.size)
        self._allocation = allocation
        self.name = "CentralWavelet"

    @property
    def epsilon(self) -> float:
        """Total privacy budget."""
        return self._privacy.epsilon

    @property
    def allocation(self) -> str:
        """The noise-allocation strategy (``"weighted"`` or ``"uniform"``)."""
        return self._allocation

    @property
    def sensitivity(self) -> float:
        """L1 sensitivity of the coefficient vector."""
        return self._sensitivity

    def _level_noise_scale(self, height_j: int) -> float:
        """Laplace scale applied to detail coefficients at height ``j``."""
        if self._allocation == "uniform":
            return self._sensitivity / self.epsilon
        # Weighted: epsilon / h budget per level, per-level sensitivity 2^{-j/2}.
        per_level_epsilon = self.epsilon / max(self._height, 1)
        return (2.0 ** (-height_j / 2.0)) / per_level_epsilon

    def per_coefficient_noise_variance(self, n_users: int, height_j: int = 1) -> float:
        """Variance of one coefficient's *fraction-scale* estimate."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        scale = self._level_noise_scale(height_j)
        return 2.0 * scale * scale / (n_users**2)

    def run(self, true_counts: np.ndarray, rng: RngLike = None) -> HaarEstimator:
        """Perturb the exact coefficients and return a fraction estimator."""
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self._domain.size:
            raise ValueError(
                f"true_counts must have length {self._domain.size}, got {counts.shape}"
            )
        total = counts.sum()
        if total <= 0:
            raise ValueError("cannot run the mechanism with zero users")
        padded = np.zeros(self._padded)
        padded[: self._domain.size] = counts
        exact = haar_transform(padded)
        noisy_details = [
            (level + rng.laplace(0.0, self._level_noise_scale(height_j), size=level.shape))
            / total
            for height_j, level in enumerate(exact.details, start=1)
        ]
        # The smooth coefficient encodes the (public) total, so it is kept
        # exact on the fraction scale, mirroring the local protocol.
        coefficients = HaarCoefficients(
            smooth=1.0 / math.sqrt(self._padded), details=noisy_details
        )
        return HaarEstimator(self._domain.size, self._padded, coefficients, None)
