"""Centralized-DP hierarchical histograms (Hay et al. / Qardaji et al.).

Used only by the Figure 7 reproduction, which compares the *ratio* of
wavelet to hierarchical error in the centralized model against the same
ratio in the local model.  The construction is the classical one: the
trusted aggregator materialises the exact B-ary tree of counts, splits the
privacy budget evenly across the ``h`` non-root levels, adds Laplace noise
of scale ``h / epsilon`` to every node (each user contributes to one node
per level, so per-level sensitivity is 1), and optionally applies the same
constrained inference as the local protocol.

The result is returned as a :class:`~repro.hierarchy.hh.HierarchicalEstimator`
over *fractions* (node counts divided by ``N``), so all the range/prefix/
quantile machinery is shared with the local implementations.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain, PrivacyParams
from repro.centralized.laplace import laplace_mechanism, laplace_variance
from repro.hierarchy.hh import HierarchicalEstimator
from repro.hierarchy.tree import DomainTree


class CentralizedHierarchical:
    """Centralized Laplace hierarchical histogram with optional consistency."""

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        branching: int = 2,
        consistency: bool = True,
    ) -> None:
        self._domain = Domain(int(domain_size))
        self._privacy = PrivacyParams(float(epsilon))
        self._tree = DomainTree(self._domain.size, branching)
        self._consistency = bool(consistency)
        suffix = "CI" if consistency else ""
        self.name = f"CentralHH{branching}{suffix}"

    @property
    def tree(self) -> DomainTree:
        """The structural domain tree."""
        return self._tree

    @property
    def epsilon(self) -> float:
        """Total privacy budget."""
        return self._privacy.epsilon

    @property
    def branching(self) -> int:
        """Tree fan-out."""
        return self._tree.branching

    def per_node_noise_variance(self, n_users: int) -> float:
        """Variance of each node's *fraction* estimate before consistency."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        per_level_epsilon = self.epsilon / self._tree.height
        return laplace_variance(per_level_epsilon) / (n_users**2)

    def run(self, true_counts: np.ndarray, rng: RngLike = None) -> HierarchicalEstimator:
        """Perturb the exact tree of counts and return a fraction estimator."""
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self._domain.size:
            raise ValueError(
                f"true_counts must have length {self._domain.size}, got {counts.shape}"
            )
        total = counts.sum()
        if total <= 0:
            raise ValueError("cannot run the mechanism with zero users")
        per_level_epsilon = self.epsilon / self._tree.height
        level_values = []
        for level in range(self._tree.num_levels):
            node_counts = self._tree.level_histogram(counts, level)
            if level == 0:
                # The root (total population size) is treated as public, as
                # in the local protocol where fractions always sum to one.
                level_values.append(np.array([1.0]))
                continue
            noisy = laplace_mechanism(node_counts, per_level_epsilon, rng=rng)
            level_values.append(noisy / total)
        estimator = HierarchicalEstimator(
            self._tree, level_values, consistent=False, level_user_counts=None
        )
        if self._consistency:
            estimator = estimator.with_consistency()
        return estimator
