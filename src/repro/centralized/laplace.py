"""Centralized differential privacy primitives (Laplace mechanism).

The paper's Figure 7 contrasts its *local* results with the behaviour of
the corresponding *centralized* mechanisms studied by Qardaji et al. and
Xiao et al.  To recompute that comparison from first principles we provide
the small amount of centralized-DP machinery required: the Laplace
mechanism applied to count vectors with a given L1 sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.core.types import PrivacyParams


def laplace_noise_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Scale ``b = sensitivity / epsilon`` of the Laplace mechanism."""
    params = PrivacyParams(float(epsilon))
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity / params.epsilon


def laplace_mechanism(
    values: np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Add i.i.d. Laplace noise calibrated to ``sensitivity / epsilon``."""
    rng = ensure_rng(rng)
    scale = laplace_noise_scale(epsilon, sensitivity)
    values = np.asarray(values, dtype=np.float64)
    return values + rng.laplace(loc=0.0, scale=scale, size=values.shape)


def laplace_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Variance ``2 b^2`` of a single Laplace perturbation."""
    scale = laplace_noise_scale(epsilon, sensitivity)
    return 2.0 * scale * scale
