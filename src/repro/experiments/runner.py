"""Shared machinery for the figure/table reproductions.

Every experiment follows the same loop: build a synthetic population, pick
a query workload, run each competing method ``repetitions`` times with
independent randomness, and record the mean squared error between the
estimated and exact answers.  This module centralises that loop plus the
naming scheme for methods ("HHc4", "HaarHRR", "FlatOUE", "TreeHRRCI", ...)
so experiments, benchmarks and tests all construct exactly the same
protocol objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import mean_squared_error, summarize_repetitions
from repro.core.protocol import RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng, spawn_rngs
from repro.core.types import RangeSpec
from repro.data.synthetic import cauchy_population
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.workload import (
    all_range_queries,
    prefix_queries,
    sampled_range_queries,
    true_answers,
)
from repro.wavelet import HaarHRR

#: Pattern for hierarchical method names: HH4, HHc16, HH8c (paper style HHc_B).
_HH_PATTERN = re.compile(r"^hh(c?)(\d+)$")
#: Pattern for the Tree<ORACLE>[CI] naming used in Figure 4.
_TREE_PATTERN = re.compile(r"^tree(oue|hrr|olh|grr)(ci?)$|^tree(oue|hrr|olh|grr)$")


def make_method(
    name: str, domain_size: int, epsilon: float, branching: int = 4
) -> RangeQueryProtocol:
    """Construct a protocol from one of the paper's method names.

    Recognised names (case-insensitive):

    * ``FlatOUE``, ``FlatHRR``, ``FlatOLH`` -- flat baselines;
    * ``HH<B>`` / ``HHc<B>`` -- hierarchical histograms with OUE, without /
      with constrained inference (e.g. ``HHc4``);
    * ``TreeOUE``, ``TreeOUECI``, ``TreeHRR``, ``TreeHRRCI``, ``TreeOLH``,
      ``TreeOLHCI`` -- hierarchical histograms with an explicit oracle and
      the supplied ``branching``;
    * ``HaarHRR`` -- the wavelet method.
    """
    key = name.strip().lower()
    if key == "haarhrr":
        return HaarHRR(domain_size, epsilon)
    if key.startswith("flat"):
        oracle = key[len("flat") :] or "oue"
        return FlatRangeQuery(domain_size, epsilon, oracle=oracle)
    match = _HH_PATTERN.match(key)
    if match:
        consistency = match.group(1) == "c"
        fanout = int(match.group(2))
        return HierarchicalHistogram(
            domain_size, epsilon, branching=fanout, oracle="oue", consistency=consistency
        )
    match = _TREE_PATTERN.match(key)
    if match:
        oracle = match.group(1) or match.group(3)
        consistency = bool(match.group(2))
        return HierarchicalHistogram(
            domain_size, epsilon, branching=branching, oracle=oracle, consistency=consistency
        )
    raise KeyError(f"unrecognised method name {name!r}")


@dataclass
class MethodResult:
    """MSE summary of one method on one configuration."""

    method: str
    mse_mean: float
    mse_std: float
    repetitions: int

    def scaled(self, factor: float = 1000.0) -> float:
        """The mean MSE scaled the way the paper's tables present it."""
        return self.mse_mean * factor


@dataclass
class WorkloadEvaluation:
    """A reusable bundle of queries and their exact answers."""

    queries: List[RangeSpec]
    truths: np.ndarray

    @classmethod
    def from_frequencies(
        cls, queries: Sequence[RangeSpec], frequencies: np.ndarray
    ) -> "WorkloadEvaluation":
        return cls(queries=list(queries), truths=true_answers(list(queries), frequencies))


def build_range_workload(
    domain_size: int,
    exhaustive_limit: int,
    num_start_points: int,
) -> List[RangeSpec]:
    """All ranges for small domains, the paper's sampled workload otherwise."""
    if domain_size <= exhaustive_limit:
        return all_range_queries(domain_size)
    return sampled_range_queries(domain_size, num_start_points)


def build_prefix_workload(domain_size: int) -> List[RangeSpec]:
    """Every prefix query (there are only ``D`` of them)."""
    return prefix_queries(domain_size)


def evaluate_method(
    protocol: RangeQueryProtocol,
    true_counts: np.ndarray,
    workload: WorkloadEvaluation,
    repetitions: int,
    rng: RngLike = None,
    simulated: bool = True,
    items: Optional[np.ndarray] = None,
) -> MethodResult:
    """Run a protocol ``repetitions`` times and summarise the range-query MSE.

    ``simulated=True`` (default) uses the aggregate simulation path, which
    is statistically equivalent and orders of magnitude faster; pass
    ``simulated=False`` together with ``items`` to exercise the full
    per-user pipeline.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    rngs = spawn_rngs(rng, repetitions)
    errors = []
    for repetition_rng in rngs:
        if simulated:
            estimator = protocol.run_simulated(true_counts, rng=repetition_rng)
        else:
            if items is None:
                raise ValueError("items are required when simulated=False")
            estimator = protocol.run(items, rng=repetition_rng)
        estimates = estimator.range_queries(workload.queries)
        errors.append(mean_squared_error(estimates, workload.truths))
    summary = summarize_repetitions(errors)
    return MethodResult(
        method=protocol.name,
        mse_mean=summary.mean,
        mse_std=summary.std,
        repetitions=repetitions,
    )


def cauchy_counts(
    domain_size: int,
    n_users: int,
    center_fraction: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Exact histogram of the paper's default Cauchy population."""
    dataset = cauchy_population(
        domain_size=domain_size,
        n_users=n_users,
        center_fraction=center_fraction,
        rng=ensure_rng(rng),
    )
    return dataset.counts()


def format_table(
    rows: Sequence[Sequence[str]], headers: Sequence[str], title: str = ""
) -> str:
    """Plain-text table formatting shared by all experiment drivers."""
    columns = [list(headers)] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
