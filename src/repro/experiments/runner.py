"""Shared machinery for the figure/table reproductions.

Every experiment follows the same loop: build a synthetic population, pick
a query workload, run each competing method ``repetitions`` times with
independent randomness, and record the mean squared error between the
estimated and exact answers.  This module centralises that loop plus the
naming scheme for methods ("HHc4", "HaarHRR", "FlatOUE", "TreeHRRCI", ...)
so experiments, benchmarks and tests all construct exactly the same
protocol objects.
"""

from __future__ import annotations

import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro import (
    PROTOCOL_ALIASES,
    PROTOCOL_REGISTRY,
    accepted_protocol_kwargs,
    make_protocol,
)
from repro.analysis.metrics import mean_squared_error, summarize_repetitions
from repro.core.protocol import RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng, spawn_rngs
from repro.core.types import RangeSpec
from repro.engine import Engine
from repro.data.synthetic import cauchy_population
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.workload import (
    RangeWorkload,
    all_range_workload,
    prefix_workload,
    sampled_range_workload,
    true_answers,
)
from repro.wavelet import HaarHRR

#: Pattern for hierarchical method names: HH4, HHc16, HH8c (paper style HHc_B).
_HH_PATTERN = re.compile(r"^hh(c?)(\d+)$")
#: Pattern for the Tree<ORACLE>[CI] naming used in Figure 4.
_TREE_PATTERN = re.compile(r"^tree(oue|hrr|olh|grr)(ci?)$|^tree(oue|hrr|olh|grr)$")


def make_method(
    name: str, domain_size: int, epsilon: float, branching: int = 4
) -> RangeQueryProtocol:
    """Construct a protocol from one of the paper's method names.

    Recognised names (case-insensitive):

    * ``FlatOUE``, ``FlatHRR``, ``FlatOLH`` -- flat baselines;
    * ``HH<B>`` / ``HHc<B>`` -- hierarchical histograms with OUE, without /
      with constrained inference (e.g. ``HHc4``);
    * ``TreeOUE``, ``TreeOUECI``, ``TreeHRR``, ``TreeHRRCI``, ``TreeOLH``,
      ``TreeOLHCI`` -- hierarchical histograms with an explicit oracle and
      the supplied ``branching``;
    * ``HaarHRR`` -- the wavelet method;
    * any 1-D :func:`repro.make_protocol` registry handle or alias
      (``flat``, ``hh``, ``haar``, ``wavelet``), built with the supplied
      ``branching`` where the protocol accepts one; the 2-D ``grid2d``
      handle is excluded because the evaluation loop answers scalar
      ranges.
    """
    key = name.strip().lower()
    if key == "haarhrr":
        return HaarHRR(domain_size, epsilon)
    registry_key = PROTOCOL_ALIASES.get(key, key)
    cls = PROTOCOL_REGISTRY.get(registry_key)
    # Only 1-D range protocols fit the evaluation loop (run_simulated over
    # a scalar histogram); the 2-D grid handle is deliberately excluded.
    if cls is not None and issubclass(cls, RangeQueryProtocol):
        kwargs = (
            {"branching": branching}
            if "branching" in accepted_protocol_kwargs(cls)
            else {}
        )
        return make_protocol(registry_key, domain_size, epsilon, **kwargs)
    if key.startswith("flat"):
        oracle = key[len("flat") :] or "oue"
        return FlatRangeQuery(domain_size, epsilon, oracle=oracle)
    match = _HH_PATTERN.match(key)
    if match:
        consistency = match.group(1) == "c"
        fanout = int(match.group(2))
        return HierarchicalHistogram(
            domain_size, epsilon, branching=fanout, oracle="oue", consistency=consistency
        )
    match = _TREE_PATTERN.match(key)
    if match:
        oracle = match.group(1) or match.group(3)
        consistency = bool(match.group(2))
        return HierarchicalHistogram(
            domain_size, epsilon, branching=branching, oracle=oracle, consistency=consistency
        )
    raise KeyError(f"unrecognised method name {name!r}")


@dataclass
class MethodResult:
    """MSE summary of one method on one configuration."""

    method: str
    mse_mean: float
    mse_std: float
    repetitions: int

    def scaled(self, factor: float = 1000.0) -> float:
        """The mean MSE scaled the way the paper's tables present it."""
        return self.mse_mean * factor


@dataclass
class WorkloadEvaluation:
    """A reusable bundle of queries and their exact answers.

    ``queries`` is an array-native :class:`RangeWorkload`;
    :meth:`from_frequencies` also accepts a sequence of
    :class:`~repro.core.types.RangeSpec` for compatibility and converts it
    once.
    """

    queries: RangeWorkload
    truths: np.ndarray

    @classmethod
    def from_frequencies(
        cls,
        queries: Union[RangeWorkload, Sequence[RangeSpec]],
        frequencies: np.ndarray,
    ) -> "WorkloadEvaluation":
        workload = RangeWorkload.from_queries(queries)
        return cls(queries=workload, truths=true_answers(workload, frequencies))


def build_range_workload(
    domain_size: int,
    exhaustive_limit: int,
    num_start_points: int,
) -> RangeWorkload:
    """All ranges for small domains, the paper's sampled workload otherwise."""
    if domain_size <= exhaustive_limit:
        return all_range_workload(domain_size)
    return sampled_range_workload(domain_size, num_start_points)


def build_prefix_workload(domain_size: int) -> RangeWorkload:
    """Every prefix query (there are only ``D`` of them)."""
    return prefix_workload(domain_size)


def _run_one_repetition(
    spec: Optional[dict],
    protocol: Optional[RangeQueryProtocol],
    true_counts: np.ndarray,
    lefts: np.ndarray,
    rights: np.ndarray,
    truths: np.ndarray,
    repetition_rng: np.random.Generator,
    simulated: bool,
    items: Optional[np.ndarray],
) -> float:
    """One repetition's MSE; module-level so worker processes can pickle it.

    Worker processes receive the protocol ``spec`` and rebuild it; the
    serial path passes the live ``protocol`` object straight through.
    Each repetition runs through the :class:`repro.engine.Engine` façade:
    the simulated path uses the engine's aggregate-simulation driver, the
    full path absorbs the population into one epoch and finalizes the
    ``window="all"`` estimator -- both bit-identical to the direct
    protocol calls they replaced.
    """
    engine = Engine.open(spec if protocol is None else protocol)
    if simulated:
        estimator = engine.simulate(true_counts, rng=repetition_rng)
    else:
        engine.session().absorb(items, rng=repetition_rng)
        estimator = engine.estimator()
    estimates = estimator.range_queries_batch(lefts, rights)
    return mean_squared_error(estimates, truths)


def evaluate_method(
    protocol: RangeQueryProtocol,
    true_counts: np.ndarray,
    workload: WorkloadEvaluation,
    repetitions: int,
    rng: RngLike = None,
    simulated: bool = True,
    items: Optional[np.ndarray] = None,
    workers: int = 1,
) -> MethodResult:
    """Run a protocol ``repetitions`` times and summarise the range-query MSE.

    ``simulated=True`` (default) uses the aggregate simulation path, which
    is statistically equivalent and orders of magnitude faster; pass
    ``simulated=False`` together with ``items`` to exercise the full
    per-user pipeline.

    ``workers > 1`` distributes the repetitions over a process pool.  Every
    repetition owns a spawned child RNG stream regardless of where it runs,
    and results are collected in submission order, so the summary is
    identical to the serial path at any worker count.  Workers rebuild the
    protocol from :meth:`~repro.core.protocol.RangeQueryProtocol.spec`, so
    parallel evaluation requires a registry-constructible protocol.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not simulated and items is None:
        raise ValueError("items are required when simulated=False")
    rngs = spawn_rngs(rng, repetitions)
    queries = RangeWorkload.from_queries(workload.queries)
    if workers == 1 or repetitions == 1:
        errors = [
            _run_one_repetition(
                None,
                protocol,
                true_counts,
                queries.lefts,
                queries.rights,
                workload.truths,
                repetition_rng,
                simulated,
                items,
            )
            for repetition_rng in rngs
        ]
    else:
        spec = protocol.spec()
        with ProcessPoolExecutor(max_workers=min(workers, repetitions)) as pool:
            errors = list(
                pool.map(
                    _run_one_repetition,
                    [spec] * repetitions,
                    [None] * repetitions,
                    [true_counts] * repetitions,
                    [queries.lefts] * repetitions,
                    [queries.rights] * repetitions,
                    [workload.truths] * repetitions,
                    rngs,
                    [simulated] * repetitions,
                    [items] * repetitions,
                )
            )
    summary = summarize_repetitions(errors)
    return MethodResult(
        method=protocol.name,
        mse_mean=summary.mean,
        mse_std=summary.std,
        repetitions=repetitions,
    )


def cauchy_counts(
    domain_size: int,
    n_users: int,
    center_fraction: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Exact histogram of the paper's default Cauchy population."""
    dataset = cauchy_population(
        domain_size=domain_size,
        n_users=n_users,
        center_fraction=center_fraction,
        rng=ensure_rng(rng),
    )
    return dataset.counts()


def format_table(
    rows: Sequence[Sequence[str]], headers: Sequence[str], title: str = ""
) -> str:
    """Plain-text table formatting shared by all experiment drivers."""
    columns = [list(headers)] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
