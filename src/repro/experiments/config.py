"""Experiment configuration and scale presets.

The paper evaluates with ``N = 2^26`` users and domains up to ``2^22`` on a
C++ implementation; a pure-Python reproduction keeps the same *structure*
(same methods, same sweeps, same metrics) at laptop scale by default and
lets the caller scale up.  Three presets are provided:

* ``smoke``   -- seconds; used by the test-suite and CI-style checks.
* ``default`` -- a couple of minutes for the full battery; the benchmark
  harness uses per-figure subsets of this.
* ``paper``   -- the closest tractable approximation of the paper's
  settings (hours in pure Python); provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the figure/table reproductions.

    Attributes mirror Section 5's experimental set-up.
    """

    #: Domain sizes swept by the accuracy experiments (paper: 2^8 .. 2^22).
    domain_sizes: Tuple[int, ...] = (2**8, 2**10)
    #: Population size (paper: 2^26).
    n_users: int = 2**17
    #: Default privacy budget (paper: e^eps = 3, i.e. eps ~ 1.1).
    epsilon: float = 1.1
    #: Epsilon sweep for Figures 5 and 6.
    epsilons: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4)
    #: Cauchy centre parameter P (paper default 0.4).
    center_fraction: float = 0.4
    #: Centre sweep for Figure 8.
    center_fractions: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    #: Repetitions per configuration (paper: 5).
    repetitions: int = 3
    #: Branching factors swept by Figure 4.
    branching_factors: Tuple[int, ...] = (2, 4, 8, 16)
    #: Number of evenly spaced range-query start points for large domains.
    num_start_points: int = 32
    #: Domains where evaluating *all* range queries is still feasible.
    exhaustive_domain_limit: int = 2**9
    #: Domain sizes for the centralized comparison (Figure 7).
    centralized_domain_sizes: Tuple[int, ...] = (2**8, 2**9, 2**10, 2**11)
    #: Base random seed; every repetition derives an independent stream.
    seed: int = 20190101

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Return a copy with selected fields overridden."""
        return replace(self, **overrides)


#: Named presets.
PRESETS: Dict[str, ExperimentConfig] = {
    "smoke": ExperimentConfig(
        domain_sizes=(2**6, 2**8),
        n_users=2**14,
        epsilons=(0.4, 1.1),
        center_fractions=(0.1, 0.5),
        repetitions=1,
        branching_factors=(2, 4, 16),
        num_start_points=8,
        exhaustive_domain_limit=2**7,
        centralized_domain_sizes=(2**6, 2**7),
    ),
    "default": ExperimentConfig(),
    "paper": ExperimentConfig(
        domain_sizes=(2**8, 2**12, 2**16),
        n_users=2**20,
        repetitions=5,
        branching_factors=(2, 4, 8, 16, 32),
        num_start_points=64,
        centralized_domain_sizes=(2**8, 2**9, 2**10, 2**11),
    ),
}


def get_config(preset: str = "default") -> ExperimentConfig:
    """Look up a preset by name."""
    key = preset.strip().lower()
    if key not in PRESETS:
        raise KeyError(f"unknown preset {preset!r}; expected one of {sorted(PRESETS)}")
    return PRESETS[key]
