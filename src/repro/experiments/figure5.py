"""Figure/Table 5: impact of the privacy parameter epsilon on range queries.

For each domain size the paper tabulates, over a sweep of epsilon values,
the mean squared error (scaled by 1000) of HHc_2, HHc_4, HHc_16 and HaarHRR
on arbitrary range queries, bolding the per-row winner.  The reproduction
returns the same grid and can print it in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.rng import ensure_rng
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MethodResult,
    WorkloadEvaluation,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
    make_method,
)

#: The methods the paper keeps after the Figure 4 exploration.
FIGURE5_METHODS: Tuple[str, ...] = ("HHc2", "HHc4", "HHc16", "HaarHRR")


@dataclass
class EpsilonSweepCell:
    """MSE of one method at one (domain, epsilon) combination."""

    domain_size: int
    epsilon: float
    method: str
    result: MethodResult


def _methods_for_domain(domain_size: int) -> Tuple[str, ...]:
    # The paper drops HHc16 for its largest domain; we keep the analogous
    # rule of dropping fan-outs that no longer fit the domain.
    return tuple(
        name
        for name in FIGURE5_METHODS
        if not (name == "HHc16" and domain_size <= 16)
    )


def run_epsilon_sweep(
    config: ExperimentConfig,
    prefix: bool = False,
    rng=None,
) -> List[EpsilonSweepCell]:
    """Shared driver for Figures 5 (arbitrary ranges) and 6 (prefixes)."""
    from repro.experiments.figure6 import build_prefix_evaluation  # local import to avoid cycle

    rng = ensure_rng(rng if rng is not None else config.seed)
    cells: List[EpsilonSweepCell] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        if prefix:
            workload = build_prefix_evaluation(domain_size, frequencies)
        else:
            queries = build_range_workload(
                domain_size, config.exhaustive_domain_limit, config.num_start_points
            )
            workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for epsilon in config.epsilons:
            for method_name in _methods_for_domain(domain_size):
                protocol = make_method(method_name, domain_size, epsilon)
                result = evaluate_method(
                    protocol, counts, workload, config.repetitions, rng=rng
                )
                cells.append(
                    EpsilonSweepCell(
                        domain_size=domain_size,
                        epsilon=epsilon,
                        method=method_name,
                        result=result,
                    )
                )
    return cells


def run_figure5(config: ExperimentConfig, rng=None) -> List[EpsilonSweepCell]:
    """Figure 5: arbitrary range queries."""
    return run_epsilon_sweep(config, prefix=False, rng=rng)


def format_epsilon_sweep(cells: Sequence[EpsilonSweepCell], title: str) -> str:
    """Print the sweep as one table per domain, MSE x1000 as in the paper."""
    blocks: List[str] = []
    domains = sorted({cell.domain_size for cell in cells})
    for domain_size in domains:
        domain_cells = [cell for cell in cells if cell.domain_size == domain_size]
        methods = sorted({cell.method for cell in domain_cells}, key=_method_order)
        epsilons = sorted({cell.epsilon for cell in domain_cells})
        rows = []
        for epsilon in epsilons:
            row = [f"{epsilon:.1f}"]
            values: Dict[str, float] = {}
            for method in methods:
                for cell in domain_cells:
                    if cell.epsilon == epsilon and cell.method == method:
                        values[method] = cell.result.scaled()
            best = min(values.values()) if values else float("nan")
            for method in methods:
                value = values.get(method, float("nan"))
                marker = "*" if value == best else " "
                row.append(f"{value:.3f}{marker}")
            rows.append(row)
        blocks.append(
            format_table(
                rows,
                headers=["eps"] + list(methods),
                title=f"{title} -- D={domain_size} (MSE x1000, * = best)",
            )
        )
    return "\n\n".join(blocks)


def _method_order(name: str) -> Tuple[int, str]:
    order = {"HHc2": 0, "HHc4": 1, "HHc16": 2, "HaarHRR": 3}
    return (order.get(name, 99), name)


def winners_by_epsilon(cells: Sequence[EpsilonSweepCell]) -> Dict[Tuple[int, float], str]:
    """Best method for each (domain, epsilon), used to check the crossover."""
    best: Dict[Tuple[int, float], EpsilonSweepCell] = {}
    for cell in cells:
        key = (cell.domain_size, cell.epsilon)
        if key not in best or cell.result.mse_mean < best[key].result.mse_mean:
            best[key] = cell
    return {key: cell.method for key, cell in best.items()}
