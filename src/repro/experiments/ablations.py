"""Ablation studies for the design choices the paper motivates analytically.

Four ablations, one per design decision called out in DESIGN.md:

* **A1 -- level sampling vs budget splitting** (Section 4.4).  The paper
  argues splitting the budget across levels costs a factor ``h`` more
  variance than sampling a level per user; A1 measures both.
* **A2 -- constrained inference on/off** (Section 4.5).  The "CI" step
  should never hurt and helps most at large fan-outs and long ranges.
* **A3 -- prefix vs arbitrary ranges** (Section 4.7).  Prefix queries touch
  only one fringe and should see roughly half the variance.
* **A4 -- post-processing pipelines per family**.  The unified
  :mod:`repro.core.postprocess` registry lets every family swap its
  assembly-time clean-up; A4 sweeps the sensible pipelines of each 1-D
  family (and the 2-D grid) on the same populations and workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import make_protocol
from repro.analysis.metrics import mean_squared_error
from repro.core.rng import ensure_rng, spawn_rngs
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import build_prefix_evaluation
from repro.experiments.runner import (
    WorkloadEvaluation,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
)
from repro.hierarchy import HierarchicalHistogram
from repro.wavelet import HaarHRR


@dataclass
class AblationRow:
    """A labelled MSE measurement."""

    label: str
    domain_size: int
    mse: float


def run_sampling_vs_splitting(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A1: compare the paper's level sampling with budget splitting."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for strategy in ("sample", "split"):
            protocol = HierarchicalHistogram(
                domain_size,
                config.epsilon,
                branching=4,
                oracle="oue",
                consistency=True,
                level_strategy=strategy,
            )
            result = evaluate_method(
                protocol, counts, workload, config.repetitions, rng=rng
            )
            rows.append(
                AblationRow(
                    label=f"HHc4-{strategy}", domain_size=domain_size, mse=result.mse_mean
                )
            )
    return rows


def run_consistency_ablation(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A2: constrained inference on/off across branching factors."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for branching in config.branching_factors:
            if branching >= domain_size:
                continue
            for consistency in (False, True):
                protocol = HierarchicalHistogram(
                    domain_size,
                    config.epsilon,
                    branching=branching,
                    oracle="oue",
                    consistency=consistency,
                )
                result = evaluate_method(
                    protocol, counts, workload, config.repetitions, rng=rng
                )
                rows.append(
                    AblationRow(
                        label=protocol.name + f"-B{branching}",
                        domain_size=domain_size,
                        mse=result.mse_mean,
                    )
                )
    return rows


def run_prefix_vs_range(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A3: prefix-query MSE vs arbitrary-range MSE for HHc4 and HaarHRR."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        range_queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        range_workload = WorkloadEvaluation.from_frequencies(range_queries, frequencies)
        prefix_workload = build_prefix_evaluation(domain_size, frequencies)
        protocols = [
            HierarchicalHistogram(domain_size, config.epsilon, branching=4, oracle="oue"),
            HaarHRR(domain_size, config.epsilon),
        ]
        for protocol in protocols:
            range_result = evaluate_method(
                protocol, counts, range_workload, config.repetitions, rng=rng
            )
            prefix_result = evaluate_method(
                protocol, counts, prefix_workload, config.repetitions, rng=rng
            )
            rows.append(
                AblationRow(
                    label=f"{protocol.name}-range",
                    domain_size=domain_size,
                    mse=range_result.mse_mean,
                )
            )
            rows.append(
                AblationRow(
                    label=f"{protocol.name}-prefix",
                    domain_size=domain_size,
                    mse=prefix_result.mse_mean,
                )
            )
    return rows


#: Post-processing pipelines swept per 1-D family by A4.  The hierarchical
#: variants start from the raw (consistency=False) protocol so every
#: pipeline is measured against the same unprocessed estimates.
POSTPROCESS_SWEEP = {
    "flat": ("none", "clip", "norm_sub", "monotone_cdf"),
    "hh": ("none", "consistency", "consistency+norm_sub", "least_squares"),
    "haar": ("none", "haar_threshold"),
}

#: Domains where materialising the least-squares design matrix is cheap.
_LEAST_SQUARES_DOMAIN_LIMIT = 2**9


def run_postprocess_ablation(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A4: sweep the post-processing registry per 1-D protocol family.

    Every variant of one family sees identical oracle randomness (the
    pipeline runs after aggregation), so rows differ only by pipeline.
    """
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for family, pipelines in POSTPROCESS_SWEEP.items():
            family_seed = int(rng.integers(0, 2**63))
            for pipeline in pipelines:
                if (
                    "least_squares" in pipeline
                    and domain_size > _LEAST_SQUARES_DOMAIN_LIMIT
                ):
                    continue
                kwargs = {"postprocess": pipeline}
                if family == "hh":
                    kwargs.update(branching=4, oracle="oue", consistency=False)
                elif family == "flat":
                    kwargs.update(oracle="oue")
                protocol = make_protocol(family, domain_size, config.epsilon, **kwargs)
                # The same seed for every pipeline of one family: the
                # pipeline runs after aggregation, so rows differ only by
                # post-processing, never by oracle randomness.  (This
                # re-runs the aggregate simulation per pipeline -- the
                # simulation path samples estimates directly and holds no
                # reusable accumulator state -- trading some redundant
                # compute for one uniform evaluate_method loop.)
                result = evaluate_method(
                    protocol,
                    counts,
                    workload,
                    config.repetitions,
                    rng=np.random.default_rng(family_seed),
                )
                rows.append(
                    AblationRow(
                        label=f"{protocol.name}[{pipeline}]",
                        domain_size=domain_size,
                        mse=result.mse_mean,
                    )
                )
    return rows


def run_grid_postprocess_ablation(
    config: ExperimentConfig,
    rng=None,
    grid_size: int = 16,
) -> List[AblationRow]:
    """A4 (2-D): grid pipelines on an axis-aligned rectangle workload.

    The grid family answers rectangles, not scalar ranges, so it gets its
    own small evaluation loop: a lattice rectangle workload over a
    ``grid_size x grid_size`` domain, exact answers from the 2-D
    histogram, full per-user protocol runs (the grid has no aggregate
    simulation driver).
    """
    rng = ensure_rng(rng if rng is not None else config.seed)
    n_users = min(config.n_users, 2**15)
    # Correlated coordinates so the marginals carry real structure.
    x_items = rng.integers(0, grid_size, size=n_users)
    y_items = np.minimum(
        grid_size - 1, x_items + rng.integers(0, max(2, grid_size // 4), size=n_users)
    )
    histogram = np.zeros((grid_size, grid_size))
    np.add.at(histogram, (x_items, y_items), 1.0)
    histogram /= n_users
    # Every rectangle with corners on a grid_size/4-step lattice.
    anchors = list(range(0, grid_size, max(1, grid_size // 4)))
    rectangles = [
        (xl, xr, yl, yr)
        for xl in anchors
        for xr in [a + max(1, grid_size // 4) - 1 for a in anchors]
        if xl <= xr
        for yl in anchors
        for yr in [a + max(1, grid_size // 4) - 1 for a in anchors]
        if yl <= yr
    ]
    truths = np.asarray(
        [
            histogram[xl : xr + 1, yl : yr + 1].sum()
            for xl, xr, yl, yr in rectangles
        ]
    )
    arrays = [np.asarray(col, np.int64) for col in zip(*rectangles)]
    rows: List[AblationRow] = []
    for pipeline in ("none", "clip", "grid_consistency"):
        protocol = make_protocol(
            "grid2d", grid_size, config.epsilon, branching=2, postprocess=pipeline
        )
        errors = []
        for repetition_rng in spawn_rngs(config.seed, config.repetitions):
            estimator = protocol.run(x_items, y_items, rng=repetition_rng)
            estimates = estimator.rectangle_queries(*arrays)
            errors.append(mean_squared_error(estimates, truths))
        rows.append(
            AblationRow(
                label=f"{protocol.name}[{pipeline}]",
                domain_size=grid_size,
                mse=float(np.mean(errors)),
            )
        )
    return rows


def format_ablation(rows: List[AblationRow], title: str) -> str:
    """Render ablation measurements as a table."""
    table_rows = [
        (row.domain_size, row.label, f"{row.mse:.3e}") for row in sorted(
            rows, key=lambda r: (r.domain_size, r.label)
        )
    ]
    return format_table(table_rows, headers=("D", "variant", "MSE"), title=title)
