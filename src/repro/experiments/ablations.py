"""Ablation studies for the design choices the paper motivates analytically.

Three ablations, one per design decision called out in DESIGN.md:

* **A1 -- level sampling vs budget splitting** (Section 4.4).  The paper
  argues splitting the budget across levels costs a factor ``h`` more
  variance than sampling a level per user; A1 measures both.
* **A2 -- constrained inference on/off** (Section 4.5).  The "CI" step
  should never hurt and helps most at large fan-outs and long ranges.
* **A3 -- prefix vs arbitrary ranges** (Section 4.7).  Prefix queries touch
  only one fringe and should see roughly half the variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.rng import ensure_rng
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import build_prefix_evaluation
from repro.experiments.runner import (
    WorkloadEvaluation,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
)
from repro.hierarchy import HierarchicalHistogram
from repro.wavelet import HaarHRR


@dataclass
class AblationRow:
    """A labelled MSE measurement."""

    label: str
    domain_size: int
    mse: float


def run_sampling_vs_splitting(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A1: compare the paper's level sampling with budget splitting."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for strategy in ("sample", "split"):
            protocol = HierarchicalHistogram(
                domain_size,
                config.epsilon,
                branching=4,
                oracle="oue",
                consistency=True,
                level_strategy=strategy,
            )
            result = evaluate_method(
                protocol, counts, workload, config.repetitions, rng=rng
            )
            rows.append(
                AblationRow(
                    label=f"HHc4-{strategy}", domain_size=domain_size, mse=result.mse_mean
                )
            )
    return rows


def run_consistency_ablation(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A2: constrained inference on/off across branching factors."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
        for branching in config.branching_factors:
            if branching >= domain_size:
                continue
            for consistency in (False, True):
                protocol = HierarchicalHistogram(
                    domain_size,
                    config.epsilon,
                    branching=branching,
                    oracle="oue",
                    consistency=consistency,
                )
                result = evaluate_method(
                    protocol, counts, workload, config.repetitions, rng=rng
                )
                rows.append(
                    AblationRow(
                        label=protocol.name + f"-B{branching}",
                        domain_size=domain_size,
                        mse=result.mse_mean,
                    )
                )
    return rows


def run_prefix_vs_range(config: ExperimentConfig, rng=None) -> List[AblationRow]:
    """A3: prefix-query MSE vs arbitrary-range MSE for HHc4 and HaarHRR."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    rows: List[AblationRow] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        range_queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        range_workload = WorkloadEvaluation.from_frequencies(range_queries, frequencies)
        prefix_workload = build_prefix_evaluation(domain_size, frequencies)
        protocols = [
            HierarchicalHistogram(domain_size, config.epsilon, branching=4, oracle="oue"),
            HaarHRR(domain_size, config.epsilon),
        ]
        for protocol in protocols:
            range_result = evaluate_method(
                protocol, counts, range_workload, config.repetitions, rng=rng
            )
            prefix_result = evaluate_method(
                protocol, counts, prefix_workload, config.repetitions, rng=rng
            )
            rows.append(
                AblationRow(
                    label=f"{protocol.name}-range",
                    domain_size=domain_size,
                    mse=range_result.mse_mean,
                )
            )
            rows.append(
                AblationRow(
                    label=f"{protocol.name}-prefix",
                    domain_size=domain_size,
                    mse=prefix_result.mse_mean,
                )
            )
    return rows


def format_ablation(rows: List[AblationRow], title: str) -> str:
    """Render ablation measurements as a table."""
    table_rows = [
        (row.domain_size, row.label, f"{row.mse:.3e}") for row in sorted(
            rows, key=lambda r: (r.domain_size, r.label)
        )
    ]
    return format_table(table_rows, headers=("D", "variant", "MSE"), title=title)
