"""Reproduction drivers for every figure and table in the paper's Section 5.

Each ``figureN`` module exposes ``run_figureN(config)`` returning structured
results and ``format_figureN(results)`` rendering them in (roughly) the
paper's layout.  ``python -m repro.experiments <figure> [--preset smoke]``
runs one from the command line.
"""

from repro.experiments.config import PRESETS, ExperimentConfig, get_config
from repro.experiments.runner import (
    MethodResult,
    WorkloadEvaluation,
    build_prefix_workload,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
    make_method,
)

__all__ = [
    "PRESETS",
    "ExperimentConfig",
    "get_config",
    "MethodResult",
    "WorkloadEvaluation",
    "build_prefix_workload",
    "build_range_workload",
    "cauchy_counts",
    "evaluate_method",
    "format_table",
    "make_method",
]
