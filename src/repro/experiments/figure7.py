"""Figure 7: contrast with the centralized-DP behaviour of both approaches.

The paper reproduces Table 3 of Qardaji et al. to make one point: in the
*centralized* model the wavelet mechanism is roughly 1.9-2.8x worse than a
well-tuned hierarchical mechanism, whereas in the *local* model the two are
within a few percent of each other.  We recompute the centralized side from
first principles with our own Laplace-based implementations (rather than
copying the published numbers) and measure the same ratios, alongside the
corresponding local ratio for the same domain sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.metrics import mean_squared_error, summarize_repetitions
from repro.centralized import CentralizedHierarchical, CentralizedWavelet
from repro.core.rng import ensure_rng, spawn_rngs
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    WorkloadEvaluation,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
    make_method,
)


@dataclass
class Figure7Row:
    """Centralized and local error figures for one domain size."""

    domain_size: int
    central_wavelet_mse: float
    central_hh2_mse: float
    central_hh16_mse: float
    local_haar_mse: float
    local_hh4_mse: float

    @property
    def central_ratio_wavelet_vs_hh16(self) -> float:
        """Centralized wavelet / centralized HHc16 (paper: ~1.9-2.8)."""
        return self.central_wavelet_mse / self.central_hh16_mse

    @property
    def central_ratio_hh2_vs_hh16(self) -> float:
        """Centralized HHc2 / centralized HHc16 (paper: ~1.9-2.5)."""
        return self.central_hh2_mse / self.central_hh16_mse

    @property
    def local_ratio_haar_vs_hh(self) -> float:
        """Local HaarHRR / local HHc4 (paper: within a few percent of 1)."""
        return self.local_haar_mse / self.local_hh4_mse


def _centralized_mse(mechanism, counts, workload, repetitions, rng) -> float:
    errors = []
    for repetition_rng in spawn_rngs(rng, repetitions):
        estimator = mechanism.run(counts, rng=repetition_rng)
        estimates = estimator.range_queries(workload.queries)
        errors.append(mean_squared_error(estimates, workload.truths))
    return summarize_repetitions(errors).mean


def run_figure7(config: ExperimentConfig, rng=None) -> List[Figure7Row]:
    """Measure centralized and local MSE at epsilon = 1 for each domain."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    epsilon = 1.0
    rows: List[Figure7Row] = []
    for domain_size in config.centralized_domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        workload = WorkloadEvaluation.from_frequencies(queries, frequencies)

        central_wavelet = CentralizedWavelet(domain_size, epsilon)
        central_hh2 = CentralizedHierarchical(domain_size, epsilon, branching=2)
        central_hh16 = CentralizedHierarchical(domain_size, epsilon, branching=16)
        local_haar = make_method("HaarHRR", domain_size, epsilon)
        local_hh4 = make_method("HHc4", domain_size, epsilon)

        rows.append(
            Figure7Row(
                domain_size=domain_size,
                central_wavelet_mse=_centralized_mse(
                    central_wavelet, counts, workload, config.repetitions, rng
                ),
                central_hh2_mse=_centralized_mse(
                    central_hh2, counts, workload, config.repetitions, rng
                ),
                central_hh16_mse=_centralized_mse(
                    central_hh16, counts, workload, config.repetitions, rng
                ),
                local_haar_mse=evaluate_method(
                    local_haar, counts, workload, config.repetitions, rng=rng
                ).mse_mean,
                local_hh4_mse=evaluate_method(
                    local_hh4, counts, workload, config.repetitions, rng=rng
                ).mse_mean,
            )
        )
    return rows


def format_figure7(rows: List[Figure7Row]) -> str:
    """Print the ratio comparison in the spirit of the paper's Figure 7."""
    table_rows = [
        (
            row.domain_size,
            f"{row.central_wavelet_mse:.3e}",
            f"{row.central_hh16_mse:.3e}",
            f"{row.central_ratio_wavelet_vs_hh16:.2f}",
            f"{row.central_ratio_hh2_vs_hh16:.2f}",
            f"{row.local_ratio_haar_vs_hh:.3f}",
        )
        for row in rows
    ]
    return format_table(
        table_rows,
        headers=(
            "D",
            "central wavelet MSE",
            "central HHc16 MSE",
            "wavelet/HHc16 (central)",
            "HHc2/HHc16 (central)",
            "Haar/HHc4 (local)",
        ),
        title="Figure 7 -- centralized-case ratios vs the local model (eps = 1)",
    )
