"""Figure 4: impact of the branching factor B and the range length r.

For each domain size the paper plots, for a ladder of range lengths, the
mean squared error of:

* the flat OUE baseline (drawn as if it had fan-out ``B = D``);
* TreeOUE / TreeHRR (and TreeOLH on the smallest domain), each with and
  without constrained inference, across a sweep of branching factors;
* HaarHRR (drawn at ``B = 2`` since it is built on a binary tree).

This module reproduces that sweep and prints one block per (domain, range
length) combination with MSE per method and branching factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.rng import ensure_rng
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MethodResult,
    WorkloadEvaluation,
    cauchy_counts,
    evaluate_method,
    format_table,
)
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.workload import RangeWorkload, length_workload, sampled_range_workload
from repro.wavelet import HaarHRR


@dataclass
class Figure4Cell:
    """One measurement: a method at a branching factor, for one (D, r)."""

    domain_size: int
    range_length: int
    method: str
    branching: int
    result: MethodResult


def _range_lengths(domain_size: int) -> List[int]:
    """The ladder of representative range lengths used for the plots."""
    lengths = [1]
    value = 4
    while value < domain_size:
        lengths.append(value)
        value *= 8
    lengths.append(max(1, domain_size - 1))
    return sorted(set(lengths))


def _queries_of_length(
    domain_size: int, length: int, config: ExperimentConfig
) -> RangeWorkload:
    if domain_size <= config.exhaustive_domain_limit:
        return length_workload(domain_size, length)
    workload = sampled_range_workload(
        domain_size, config.num_start_points, lengths=[length]
    )
    if len(workload):
        return workload
    # No sampled start point fits this length: fall back to the single
    # range anchored at the origin (matches the seed behaviour).
    return RangeWorkload(
        np.asarray([0], np.int64), np.asarray([length - 1], np.int64), domain_size
    )


def _methods_for_domain(
    domain_size: int, epsilon: float, branching_factors, include_olh: bool
) -> List[Tuple[str, int, object]]:
    """(label, branching, protocol) triples evaluated for one domain size."""
    methods: List[Tuple[str, int, object]] = []
    methods.append(("FlatOUE", domain_size, FlatRangeQuery(domain_size, epsilon, oracle="oue")))
    methods.append(("HaarHRR", 2, HaarHRR(domain_size, epsilon)))
    oracles = ["oue", "hrr"] + (["olh"] if include_olh else [])
    for oracle in oracles:
        for branching in branching_factors:
            if branching >= domain_size:
                continue
            for consistency in (False, True):
                protocol = HierarchicalHistogram(
                    domain_size,
                    epsilon,
                    branching=branching,
                    oracle=oracle,
                    consistency=consistency,
                )
                methods.append((protocol.name, branching, protocol))
    return methods


def run_figure4(config: ExperimentConfig, rng=None) -> List[Figure4Cell]:
    """Run the full Figure 4 sweep and return every measured cell."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    cells: List[Figure4Cell] = []
    for domain_size in config.domain_sizes:
        counts = cauchy_counts(
            domain_size, config.n_users, config.center_fraction, rng=rng
        )
        frequencies = counts / counts.sum()
        include_olh = domain_size <= 2**8
        methods = _methods_for_domain(
            domain_size, config.epsilon, config.branching_factors, include_olh
        )
        for length in _range_lengths(domain_size):
            queries = _queries_of_length(domain_size, length, config)
            workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
            for label, branching, protocol in methods:
                result = evaluate_method(
                    protocol, counts, workload, config.repetitions, rng=rng
                )
                cells.append(
                    Figure4Cell(
                        domain_size=domain_size,
                        range_length=length,
                        method=label,
                        branching=branching,
                        result=result,
                    )
                )
    return cells


def format_figure4(cells: List[Figure4Cell]) -> str:
    """Human-readable blocks mirroring the paper's per-(D, r) panels."""
    blocks: List[str] = []
    keys = sorted({(cell.domain_size, cell.range_length) for cell in cells})
    for domain_size, length in keys:
        rows = []
        for cell in cells:
            if cell.domain_size != domain_size or cell.range_length != length:
                continue
            rows.append(
                (
                    cell.method,
                    cell.branching,
                    f"{cell.result.mse_mean:.3e}",
                    f"{cell.result.mse_std:.1e}",
                )
            )
        rows.sort(key=lambda row: (row[0], row[1]))
        blocks.append(
            format_table(
                rows,
                headers=("method", "B", "MSE", "std"),
                title=f"Figure 4 -- D={domain_size}, range length r={length}",
            )
        )
    return "\n\n".join(blocks)


def best_method_per_cell(cells: List[Figure4Cell]) -> Dict[Tuple[int, int], str]:
    """The most accurate method for each (domain, range length) pair."""
    best: Dict[Tuple[int, int], Figure4Cell] = {}
    for cell in cells:
        key = (cell.domain_size, cell.range_length)
        if key not in best or cell.result.mse_mean < best[key].result.mse_mean:
            best[key] = cell
    return {key: cell.method for key, cell in best.items()}
