"""Figure/Table 6: the epsilon sweep restricted to prefix queries.

Prefix queries cut only one fringe of the tree / Haar decomposition, so the
paper expects (and observes) errors up to ~30% lower than the corresponding
Figure 5 entries.  This module re-uses the Figure 5 driver with the prefix
workload and adds the side-by-side comparison that the paper renders as
underlined entries.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import WorkloadEvaluation, format_table
from repro.queries.workload import prefix_workload


def build_prefix_evaluation(domain_size: int, frequencies: np.ndarray) -> WorkloadEvaluation:
    """All prefix queries with their exact answers (array-native)."""
    return WorkloadEvaluation.from_frequencies(prefix_workload(domain_size), frequencies)


def run_figure6(config: ExperimentConfig, rng=None):
    """Run the prefix-query epsilon sweep."""
    from repro.experiments.figure5 import run_epsilon_sweep

    return run_epsilon_sweep(config, prefix=True, rng=rng)


def format_figure6(cells, title: str = "Figure 6 (prefix queries)") -> str:
    """Format the prefix sweep in the paper's table layout."""
    from repro.experiments.figure5 import format_epsilon_sweep

    return format_epsilon_sweep(cells, title)


def prefix_improvement(
    range_cells: Sequence, prefix_cells: Sequence
) -> Dict[Tuple[int, float, str], float]:
    """Ratio prefix-MSE / range-MSE for matching cells (values < 1 = better).

    Mirrors the paper's underlining of Figure 6 entries that beat their
    Figure 5 counterparts.
    """
    range_index = {
        (cell.domain_size, cell.epsilon, cell.method): cell.result.mse_mean
        for cell in range_cells
    }
    ratios: Dict[Tuple[int, float, str], float] = {}
    for cell in prefix_cells:
        key = (cell.domain_size, cell.epsilon, cell.method)
        if key in range_index and range_index[key] > 0:
            ratios[key] = cell.result.mse_mean / range_index[key]
    return ratios


def format_prefix_improvement(ratios: Dict[Tuple[int, float, str], float]) -> str:
    """Tabulate the prefix/range MSE ratios."""
    rows = [
        (domain, f"{epsilon:.1f}", method, f"{ratio:.3f}")
        for (domain, epsilon, method), ratio in sorted(ratios.items())
    ]
    return format_table(
        rows,
        headers=("D", "eps", "method", "prefix/range MSE"),
        title="Prefix vs arbitrary-range error ratios (< 1 means prefixes are easier)",
    )
