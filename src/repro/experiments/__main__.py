"""Command-line entry point: ``python -m repro.experiments <experiment>``.

Runs one (or all) of the figure reproductions at a chosen scale preset and
prints the resulting tables.  This is the human-friendly interface; the
pytest-benchmark harness in ``benchmarks/`` wraps the same drivers for
machine-readable timing and regression tracking.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments.ablations import (
    format_ablation,
    run_consistency_ablation,
    run_grid_postprocess_ablation,
    run_postprocess_ablation,
    run_prefix_vs_range,
    run_sampling_vs_splitting,
)
from repro.experiments.config import PRESETS, get_config
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_epsilon_sweep, run_figure5
from repro.experiments.figure6 import (
    format_figure6,
    format_prefix_improvement,
    prefix_improvement,
    run_figure6,
)
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9


def _run_figure4(config) -> str:
    return format_figure4(run_figure4(config))


def _run_figure5(config) -> str:
    return format_epsilon_sweep(run_figure5(config), "Figure 5 (arbitrary ranges)")


def _run_figure6(config) -> str:
    range_cells = run_figure5(config)
    prefix_cells = run_figure6(config)
    return (
        format_figure6(prefix_cells)
        + "\n\n"
        + format_prefix_improvement(prefix_improvement(range_cells, prefix_cells))
    )


def _run_figure7(config) -> str:
    return format_figure7(run_figure7(config))


def _run_figure8(config) -> str:
    return format_figure8(run_figure8(config))


def _run_figure9(config) -> str:
    return format_figure9(run_figure9(config))


def _run_ablations(config) -> str:
    parts = [
        format_ablation(
            run_sampling_vs_splitting(config), "Ablation A1 -- level sampling vs budget splitting"
        ),
        format_ablation(
            run_consistency_ablation(config), "Ablation A2 -- constrained inference on/off"
        ),
        format_ablation(
            run_prefix_vs_range(config), "Ablation A3 -- prefix vs arbitrary ranges"
        ),
        format_ablation(
            run_postprocess_ablation(config),
            "Ablation A4 -- post-processing pipelines per family",
        ),
        format_ablation(
            run_grid_postprocess_ablation(config),
            "Ablation A4 (2-D) -- grid pipelines on rectangle workloads",
        ),
    ]
    return "\n\n".join(parts)


EXPERIMENTS: Dict[str, Callable] = {
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "figure8": _run_figure8,
    "figure9": _run_figure9,
    "ablations": _run_ablations,
}


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures/tables of 'Answering Range Queries Under LDP'",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to reproduce",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=sorted(PRESETS),
        help="scale preset (smoke / default / paper)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    args = parser.parse_args(argv)

    config = get_config(args.preset)
    if args.seed is not None:
        config = config.scaled(seed=args.seed)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} (preset: {args.preset}) ===")
        print(EXPERIMENTS[name](config))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
