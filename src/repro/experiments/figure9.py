"""Figure 9: decile (quantile) queries.

The paper evaluates the deciles (phi = 0.1 .. 0.9) of a left-skewed
(P = 0.1) and a centred (P = 0.5) Cauchy population with the best
hierarchical method and HaarHRR, reporting two error measures:

* *value error* -- distance in the domain between the returned item and the
  true quantile item (top row of the paper's figure);
* *quantile error* -- how far the returned item's true rank is from the
  requested phi (bottom row).

The headline observation is that the quantile error stays small and flat
even where the value error spikes (sparse regions of the domain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.rng import ensure_rng, spawn_rngs
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import cauchy_counts, format_table, make_method
from repro.queries.quantile import deciles, evaluate_quantiles

#: Methods compared by Figure 9.
FIGURE9_METHODS = ("HHc2", "HaarHRR")
#: Distribution centres used by the two panels.
FIGURE9_CENTERS = (0.1, 0.5)


@dataclass
class Figure9Cell:
    """Average decile errors for one (domain, centre, method, phi)."""

    domain_size: int
    center_fraction: float
    method: str
    phi: float
    value_error: float
    quantile_error: float


def run_figure9(config: ExperimentConfig, rng=None) -> List[Figure9Cell]:
    """Evaluate all deciles for each method, centre and domain size."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    cells: List[Figure9Cell] = []
    domain_size = max(config.domain_sizes)
    for center in FIGURE9_CENTERS:
        counts = cauchy_counts(domain_size, config.n_users, center, rng=rng)
        frequencies = counts / counts.sum()
        for method_name in FIGURE9_METHODS:
            value_errors = {phi: [] for phi in deciles()}
            quantile_errors = {phi: [] for phi in deciles()}
            for repetition_rng in spawn_rngs(rng, config.repetitions):
                protocol = make_method(method_name, domain_size, config.epsilon)
                estimator = protocol.simulate_aggregate(counts, rng=repetition_rng)
                for evaluation in evaluate_quantiles(estimator, frequencies, deciles()):
                    value_errors[evaluation.phi].append(evaluation.value_error)
                    quantile_errors[evaluation.phi].append(evaluation.quantile_error)
            for phi in deciles():
                cells.append(
                    Figure9Cell(
                        domain_size=domain_size,
                        center_fraction=center,
                        method=method_name,
                        phi=phi,
                        value_error=float(np.mean(value_errors[phi])),
                        quantile_error=float(np.mean(quantile_errors[phi])),
                    )
                )
    return cells


def format_figure9(cells: List[Figure9Cell]) -> str:
    """One table per distribution centre: value and quantile error per decile."""
    blocks: List[str] = []
    centers = sorted({cell.center_fraction for cell in cells})
    for center in centers:
        center_cells = [cell for cell in cells if cell.center_fraction == center]
        methods = sorted({cell.method for cell in center_cells})
        rows = []
        for phi in deciles():
            row = [f"{phi:.1f}"]
            for method in methods:
                cell = next(
                    (
                        c
                        for c in center_cells
                        if c.method == method and abs(c.phi - phi) < 1e-9
                    ),
                    None,
                )
                if cell is None:
                    row.extend(["nan", "nan"])
                else:
                    row.extend([f"{cell.value_error:.1f}", f"{cell.quantile_error:.4f}"])
            rows.append(row)
        headers = ["phi"]
        for method in methods:
            headers.extend([f"{method} value err", f"{method} quantile err"])
        blocks.append(
            format_table(
                rows,
                headers=headers,
                title=f"Figure 9 -- deciles, Cauchy centre P={center:.1f}",
            )
        )
    return "\n\n".join(blocks)


def max_quantile_error(cells: List[Figure9Cell]) -> float:
    """Worst observed quantile error (the paper expects this to stay small)."""
    return max(cell.quantile_error for cell in cells) if cells else 0.0
