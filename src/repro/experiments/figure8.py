"""Figure 8: impact of the input distribution shape.

The paper shifts the centre of the Cauchy distribution across the domain
(``P`` from 0.1 to 0.9) at the default epsilon and compares HaarHRR with
the best consistent hierarchical method.  The expected outcome is that the
error is essentially flat in ``P`` for small and medium domains -- the
methods are data-independent -- with a mild effect for very large domains
caused purely by the range-sampling strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.rng import ensure_rng
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MethodResult,
    WorkloadEvaluation,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
    make_method,
)

#: Methods compared in Figure 8 (HHc4 is the paper's "best consistent HH").
FIGURE8_METHODS = ("HHc4", "HaarHRR")


@dataclass
class Figure8Cell:
    """MSE of one method for one (domain, distribution centre) pair."""

    domain_size: int
    center_fraction: float
    method: str
    result: MethodResult


def run_figure8(config: ExperimentConfig, rng=None) -> List[Figure8Cell]:
    """Sweep the Cauchy centre and measure range-query MSE."""
    rng = ensure_rng(rng if rng is not None else config.seed)
    cells: List[Figure8Cell] = []
    for domain_size in config.domain_sizes:
        queries = build_range_workload(
            domain_size, config.exhaustive_domain_limit, config.num_start_points
        )
        for center in config.center_fractions:
            counts = cauchy_counts(domain_size, config.n_users, center, rng=rng)
            frequencies = counts / counts.sum()
            workload = WorkloadEvaluation.from_frequencies(queries, frequencies)
            for method_name in FIGURE8_METHODS:
                protocol = make_method(method_name, domain_size, config.epsilon)
                result = evaluate_method(
                    protocol, counts, workload, config.repetitions, rng=rng
                )
                cells.append(
                    Figure8Cell(
                        domain_size=domain_size,
                        center_fraction=center,
                        method=method_name,
                        result=result,
                    )
                )
    return cells


def format_figure8(cells: List[Figure8Cell]) -> str:
    """One table per domain: rows are centres, columns are methods."""
    blocks: List[str] = []
    domains = sorted({cell.domain_size for cell in cells})
    for domain_size in domains:
        domain_cells = [cell for cell in cells if cell.domain_size == domain_size]
        centers = sorted({cell.center_fraction for cell in domain_cells})
        methods = sorted({cell.method for cell in domain_cells})
        rows = []
        for center in centers:
            row = [f"{center:.1f}"]
            for method in methods:
                value = next(
                    (
                        cell.result.scaled()
                        for cell in domain_cells
                        if cell.center_fraction == center and cell.method == method
                    ),
                    float("nan"),
                )
                row.append(f"{value:.3f}")
            rows.append(row)
        blocks.append(
            format_table(
                rows,
                headers=["P"] + list(methods),
                title=f"Figure 8 -- D={domain_size} (MSE x1000 vs distribution centre)",
            )
        )
    return "\n\n".join(blocks)


def max_relative_spread(cells: List[Figure8Cell]) -> float:
    """Largest (max - min) / min MSE across centres for any (domain, method).

    A small value confirms the paper's claim that the distribution shape has
    little effect on accuracy.
    """
    spread = 0.0
    keys = {(cell.domain_size, cell.method) for cell in cells}
    for domain_size, method in keys:
        values = [
            cell.result.mse_mean
            for cell in cells
            if cell.domain_size == domain_size and cell.method == method
        ]
        if len(values) >= 2 and min(values) > 0:
            spread = max(spread, (max(values) - min(values)) / min(values))
    return spread
