"""Applications built on top of LDP range queries (Section 6)."""

from repro.applications.naive_bayes import AttributeSpec, LDPNaiveBayes

__all__ = ["AttributeSpec", "LDPNaiveBayes"]
