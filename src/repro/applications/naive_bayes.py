"""Naive Bayes classification on top of LDP range queries (Section 6).

The paper closes by observing that range queries are a sufficient primitive
for simple prediction models: for a Naive Bayes classifier with a *public*
class label and *private* numeric attributes, the per-class conditional
probability of an attribute falling in a bin is exactly a range query over
the population of that class.

:class:`LDPNaiveBayes` implements that recipe.  Training partitions the
users by their (public) class, runs one range-query protocol per class and
attribute, and discretises each attribute's domain into equi-width bins.
Prediction multiplies the estimated bin probabilities (with Laplace-style
smoothing to keep them positive -- the LDP estimates can be slightly
negative) by the class priors, which are public because the labels are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class AttributeSpec:
    """Description of one private numeric attribute.

    Attributes
    ----------
    name:
        Human-readable attribute name.
    domain_size:
        The attribute's discrete domain size.
    num_bins:
        Number of equi-width bins the classifier conditions on.
    """

    name: str
    domain_size: int
    num_bins: int = 8

    def bin_edges(self) -> List[int]:
        """Inclusive (left, right) endpoints of each bin."""
        if self.num_bins < 1 or self.num_bins > self.domain_size:
            raise ValueError(
                f"num_bins must be in [1, {self.domain_size}], got {self.num_bins}"
            )
        edges = np.linspace(0, self.domain_size, self.num_bins + 1, dtype=np.int64)
        bins = []
        for index in range(self.num_bins):
            left = int(edges[index])
            right = int(edges[index + 1]) - 1
            right = max(right, left)
            bins.append((left, right))
        return bins

    def bin_of(self, value: int) -> int:
        """Index of the bin containing ``value``."""
        for index, (left, right) in enumerate(self.bin_edges()):
            if left <= value <= right:
                return index
        raise ValueError(f"value {value} outside attribute domain {self.domain_size}")


ProtocolFactory = Callable[[int], RangeQueryProtocol]


class LDPNaiveBayes:
    """Naive Bayes classifier whose likelihoods come from LDP range queries.

    Parameters
    ----------
    attributes:
        The private attributes the classifier conditions on.
    protocol_factory:
        Callable mapping an attribute's domain size to a fresh
        :class:`RangeQueryProtocol` (so the caller chooses method, epsilon
        and parameters).  Each (class, attribute) pair gets its own protocol
        run, i.e. each user's report about one attribute is epsilon-LDP.
    smoothing:
        Small positive constant added to every estimated bin probability to
        keep the product well defined despite noisy (possibly negative)
        estimates.
    """

    def __init__(
        self,
        attributes: Sequence[AttributeSpec],
        protocol_factory: ProtocolFactory,
        smoothing: float = 1e-4,
    ) -> None:
        if not attributes:
            raise ValueError("at least one attribute is required")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self._attributes = list(attributes)
        self._protocol_factory = protocol_factory
        self._smoothing = float(smoothing)
        self._classes: Optional[np.ndarray] = None
        self._priors: Dict[int, float] = {}
        self._bin_probabilities: Dict[int, List[np.ndarray]] = {}

    @property
    def attributes(self) -> List[AttributeSpec]:
        """The attribute specifications."""
        return list(self._attributes)

    @property
    def classes(self) -> np.ndarray:
        """Class labels seen during training."""
        if self._classes is None:
            raise ProtocolUsageError("the classifier has not been fitted")
        return self._classes.copy()

    def fit(
        self,
        attribute_values: Sequence[np.ndarray],
        labels: np.ndarray,
        rng: RngLike = None,
    ) -> "LDPNaiveBayes":
        """Train from private attribute columns and public labels.

        ``attribute_values[k][i]`` is user ``i``'s value of attribute ``k``.
        """
        if len(attribute_values) != len(self._attributes):
            raise ValueError(
                f"expected {len(self._attributes)} attribute columns, got {len(attribute_values)}"
            )
        labels = np.asarray(labels)
        n_users = len(labels)
        if n_users == 0:
            raise ProtocolUsageError("cannot fit the classifier with zero users")
        columns = [np.asarray(column) for column in attribute_values]
        for spec, column in zip(self._attributes, columns):
            if len(column) != n_users:
                raise ValueError(f"attribute {spec.name!r} has a mismatched length")
        rng = ensure_rng(rng)
        self._classes = np.unique(labels)
        self._priors = {}
        self._bin_probabilities = {}
        child_rngs = spawn_rngs(rng, len(self._classes) * len(self._attributes))
        rng_index = 0
        for label in self._classes:
            mask = labels == label
            class_count = int(mask.sum())
            self._priors[int(label)] = class_count / n_users
            per_attribute: List[np.ndarray] = []
            for spec, column in zip(self._attributes, columns):
                protocol = self._protocol_factory(spec.domain_size)
                estimator = protocol.run(column[mask], rng=child_rngs[rng_index])
                rng_index += 1
                per_attribute.append(self._bin_probabilities_from(estimator, spec))
            self._bin_probabilities[int(label)] = per_attribute
        return self

    def _bin_probabilities_from(
        self, estimator: RangeQueryEstimator, spec: AttributeSpec
    ) -> np.ndarray:
        raw = np.array([estimator.range_query(bin_range) for bin_range in spec.bin_edges()])
        clipped = np.clip(raw, 0.0, None) + self._smoothing
        return clipped / clipped.sum()

    def predict_log_scores(self, sample: Sequence[int]) -> Dict[int, float]:
        """Log posterior scores (up to a constant) for one sample."""
        if self._classes is None:
            raise ProtocolUsageError("the classifier has not been fitted")
        if len(sample) != len(self._attributes):
            raise ValueError(
                f"expected {len(self._attributes)} attribute values, got {len(sample)}"
            )
        scores: Dict[int, float] = {}
        for label in self._classes:
            label = int(label)
            score = np.log(max(self._priors[label], self._smoothing))
            for spec, value, probs in zip(
                self._attributes, sample, self._bin_probabilities[label]
            ):
                score += float(np.log(probs[spec.bin_of(int(value))]))
            scores[label] = score
        return scores

    def predict(self, sample: Sequence[int]) -> int:
        """Most likely class for one sample."""
        scores = self.predict_log_scores(sample)
        return max(scores, key=scores.get)

    def predict_batch(self, samples: np.ndarray) -> np.ndarray:
        """Predict a batch of samples (rows are samples, columns attributes)."""
        samples = np.asarray(samples)
        if samples.ndim != 2 or samples.shape[1] != len(self._attributes):
            raise ValueError(
                f"samples must have shape (n, {len(self._attributes)}), got {samples.shape}"
            )
        return np.array([self.predict(row) for row in samples])

    def accuracy(self, samples: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on labelled samples."""
        predictions = self.predict_batch(samples)
        labels = np.asarray(labels)
        if len(labels) != len(predictions):
            raise ValueError("labels and samples must have the same length")
        if len(labels) == 0:
            raise ValueError("cannot compute accuracy on zero samples")
        return float(np.mean(predictions == labels))
