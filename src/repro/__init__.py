"""repro: Answering Range Queries Under Local Differential Privacy.

A complete reproduction of Cormode, Kulkarni and Srivastava (VLDB 2019).
The public API centres on three range-query protocols sharing a common
interface (:class:`~repro.core.protocol.RangeQueryProtocol`):

* :class:`~repro.flat.FlatRangeQuery` -- the per-item baseline;
* :class:`~repro.hierarchy.HierarchicalHistogram` -- the HH_B framework
  (TreeOUE / TreeHRR / TreeOLH, with or without constrained inference);
* :class:`~repro.wavelet.HaarHRR` -- the Discrete Haar Transform protocol.

Quick start::

    import numpy as np
    from repro import HierarchicalHistogram
    from repro.data import cauchy_population

    data = cauchy_population(domain_size=1024, n_users=200_000, rng=0)
    protocol = HierarchicalHistogram(domain_size=1024, epsilon=1.1, branching=4)
    estimator = protocol.run(data.items, rng=1)
    print(estimator.range_query((100, 400)))

See ``examples/`` for runnable end-to-end scripts and ``benchmarks/`` for
the reproduction of every table and figure in the paper.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core import (
    Domain,
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
    PrivacyParams,
    ProtocolUsageError,
    RangeQueryEstimator,
    RangeQueryProtocol,
    RangeSpec,
    ReproError,
)
from repro.flat import FlatRangeQuery
from repro.frequency_oracles import make_oracle
from repro.hierarchy import HierarchicalHistogram
from repro.wavelet import HaarHRR

__version__ = "1.0.0"

#: Protocol registry used by the experiment harness and the CLI.
PROTOCOL_REGISTRY: Dict[str, Type[RangeQueryProtocol]] = {
    "flat": FlatRangeQuery,
    "hh": HierarchicalHistogram,
    "haar": HaarHRR,
}


def make_protocol(name: str, domain_size: int, epsilon: float, **kwargs) -> RangeQueryProtocol:
    """Construct a range-query protocol by registry handle.

    ``name`` is one of ``"flat"``, ``"hh"`` or ``"haar"``; keyword arguments
    are forwarded to the protocol constructor (e.g. ``branching=8,
    oracle="hrr", consistency=True`` for the hierarchical method).
    """
    key = name.strip().lower()
    if key not in PROTOCOL_REGISTRY:
        raise KeyError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOL_REGISTRY)}"
        )
    return PROTOCOL_REGISTRY[key](domain_size, epsilon, **kwargs)


__all__ = [
    "__version__",
    "Domain",
    "PrivacyParams",
    "RangeSpec",
    "ReproError",
    "InvalidDomainError",
    "InvalidPrivacyBudgetError",
    "InvalidRangeError",
    "ProtocolUsageError",
    "RangeQueryEstimator",
    "RangeQueryProtocol",
    "FlatRangeQuery",
    "HierarchicalHistogram",
    "HaarHRR",
    "make_oracle",
    "make_protocol",
    "PROTOCOL_REGISTRY",
]
