"""repro: Answering Range Queries Under Local Differential Privacy.

A complete reproduction of Cormode, Kulkarni and Srivastava (VLDB 2019),
built around the deployment topology the paper assumes: many untrusted-free
*clients* randomize locally, a fleet of *servers* aggregates their reports.
Every protocol family is an instance of one unified pipeline -- a
:class:`~repro.core.decomposition.Decomposition` describes the level
structure, and one generic client/server engine handles user-to-level
sampling, privatization transport, mergeable accumulation and wire
serialization for all of them (see ``ARCHITECTURE.md`` for the layered
design and how to add a new protocol as a ~50-line subclass):

* :class:`~repro.flat.FlatRangeQuery` -- the per-item baseline;
* :class:`~repro.hierarchy.HierarchicalHistogram` -- the HH_B framework
  (TreeOUE / TreeHRR / TreeOLH, with or without constrained inference);
* :class:`~repro.wavelet.HaarHRR` -- the Discrete Haar Transform protocol;
* :class:`~repro.multidim.HierarchicalGrid2D` -- the 2-D grid extension
  (Section 6), answering axis-aligned rectangle queries.

Quick start (client/server streaming model)::

    import numpy as np
    from repro import HierarchicalHistogram
    from repro.data import cauchy_population

    data = cauchy_population(domain_size=1024, n_users=200_000, rng=0)
    protocol = HierarchicalHistogram(domain_size=1024, epsilon=1.1, branching=4)

    # User side: a stateless client encodes privatized reports.  Each
    # user's report individually satisfies epsilon-LDP; raw items never
    # leave the client.
    client = protocol.client()
    rng = np.random.default_rng(1)
    reports = [client.encode_batch(batch, rng=rng)
               for batch in np.array_split(data.items, 100)]

    # Server side: shards ingest reports independently and merge exactly
    # -- any sharding, merged in any order, equals single-server ingest.
    shards = [protocol.server() for _ in range(4)]
    for index, report in enumerate(reports):
        shards[index % 4].ingest(report)
    combined = shards[0]
    for shard in shards[1:]:
        combined.merge(shard)

    estimator = combined.finalize()
    print(estimator.range_query((100, 400)))

Server state is serializable (``server.to_bytes()`` /
:func:`~repro.core.session.load_server`), so aggregation can be sharded
across processes or machines and resumed across restarts.  For one-shot
scripts, ``protocol.run(items)`` wraps one client plus one server, and
``protocol.simulate_aggregate(counts)`` produces a statistically
equivalent estimator directly from the true histogram
(``run_simulated`` remains as a deprecated alias).

The aggregation-service façade
------------------------------

Long-running deployments speak in *epochs, windows, and durable state*
rather than one-shot runs.  :class:`repro.engine.Engine` is that layer::

    from repro.engine import Engine, last

    engine = Engine.open("hh", domain_size=1024, epsilon=1.1, branching=4)
    for day, batch in enumerate(daily_batches):        # epoch per day
        engine.session(epoch=day).absorb(batch, rng=rng)
    engine.checkpoint("service.ckpt")                  # durable v2 envelope

    engine = Engine.restore("service.ckpt")
    weekly = engine.estimator(window=last(7))          # lazy exact merge
    print(weekly.range_query((100, 400)))

Each epoch is an independent mergeable accumulator shard; windowed
queries merge the selected epochs lazily (exactly -- integer sufficient
statistics) and feed the estimators' batch query kernels unchanged.  A
single-epoch ``window="all"`` engine is bit-identical to the plain
client/server session path, and pre-engine v1 state files restore as
single-epoch engines.  The CLI mirrors the façade with
``engine checkpoint`` / ``engine query`` / ``engine info`` subcommands.

For histories too large for RAM, ``Engine.open(..., store_dir=...)``
attaches the *out-of-core epoch store*: sealed epochs spill into
per-epoch memory-mapped segment files under a versioned manifest,
``checkpoint()`` becomes incremental (only dirty epochs rewrite), and
windowed queries over sealed epochs sum each segment's pre-aggregated
integer vectors instead of rebuilding full accumulators -- bit-identical
to the in-RAM merge, at O(window) memory.  Sealed runs additionally fold
into power-of-two *aggregate segments*, so a wide window reads O(log k)
segments instead of k (``last:64`` over 1024 sealed epochs answers ~23x
faster than the per-epoch sum at the default benchmark preset)::

    engine = Engine.open("hh", domain_size=1024, epsilon=1.1,
                         branching=4, store_dir="epochstore")
    for day, batch in enumerate(daily_batches):
        engine.session(epoch=day).absorb(batch, rng=rng)
        engine.seal_epoch(day)                      # spill + evict
    engine = Engine.restore("epochstore")           # manifest-only restart
    weekly = engine.estimator(window=last(7))       # segment pushdown

The CLI accepts ``--store-dir`` wherever it accepts ``--checkpoint``.

The network-facing service
--------------------------

:mod:`repro.service` puts an asyncio HTTP gateway in front of the engine
and fans ingest out to shard worker *processes* -- because accumulators
merge exactly, the sharding is unobservable in the estimates.  Serve and
drive it straight from the CLI (stdlib only, no extra dependencies)::

    python -m repro.cli serve --method hh --domain-size 1024 \\
        --epsilon 1.1 --workers 4 --port 8377 --checkpoint service.ckpt
    python -m repro.cli loadgen --url http://127.0.0.1:8377 --users 50000

or in-process for tests and notebooks::

    from repro.service import AggregationService, ServiceThread, request_json

    service = AggregationService({"name": "hh", "domain_size": 1024,
                                  "epsilon": 1.1}, num_workers=4)
    with ServiceThread(service) as handle:
        # POST framed batches to handle.url + "/ingest", then:
        answer = request_json(handle.url + "/query?ranges=100:400")

``POST /ingest`` accepts the framed report-batch container
(:func:`repro.core.serialization.pack_report_batch` -- the same bytes
``encode --output -`` pipes to stdout), ``POST /close`` seals the epoch
by merging every shard into the engine, ``GET /query`` answers windowed
range/quantile/frequency queries (``postprocess=`` re-finalizes), and
checkpoints flush on a configurable epoch cadence plus graceful
shutdown.  ``benchmarks/bench_service.py`` records sustained ingest
throughput, p99 latency and crash-recovery time in ``BENCH_service.json``.

Post-processing pipelines
-------------------------

Every family's estimates can be cleaned up by the same pluggable
post-processing layer (:mod:`repro.core.postprocess`) -- a free step under
LDP because it only touches already-privatized output.  Pipelines are
``"+"``-joined registry tokens passed as ``postprocess=`` (they round-trip
through ``spec()``, serialized states, engine checkpoints and the CLI's
``--postprocess`` flag).  For example, flat OUE estimates are unbiased but
noisy -- often negative, never summing to exactly one -- and projecting
them onto the probability simplex (``"norm_sub"``) measurably reduces
range-query error on skewed populations::

    protocol = FlatRangeQuery(1024, epsilon=1.1, postprocess="norm_sub")
    estimator = protocol.run(data.items, rng=rng)
    estimator.estimated_frequencies().min()   # >= 0, sums to exactly 1

On the ablation sweep's Cauchy populations (``repro.experiments.ablations``,
A4) this cuts flat-OUE whole-workload range MSE by ~1.5-2.5x in the
noise-dominated regime; ``python -m repro.experiments ablations`` prints
the full per-family comparison (``consistency+norm_sub`` for trees,
``haar_threshold`` for wavelets, ``grid_consistency`` for 2-D grids).
The hierarchical ``consistency=True`` flag is the same machinery:
it maps to the ``"consistency"`` pipeline (Section 4.5 constrained
inference), bit-identical to the pre-pipeline behavior.

Batch query engine
------------------

Query workloads are array-native: build a
:class:`~repro.queries.workload.RangeWorkload` (two ``int64`` arrays of
inclusive endpoints, validated once) and hand the whole thing to the
estimator -- every protocol answers it as pure NumPy kernels with zero
per-query Python objects::

    from repro.queries.workload import random_range_workload

    workload = random_range_workload(1024, 100_000, np.random.default_rng(2))
    answers = estimator.range_queries(workload)              # one gather
    prefixes = estimator.prefix_queries([10, 100, 1000])     # batch prefixes
    items = estimator.quantile_queries_batch([0.25, 0.5, 0.75])

Inconsistent hierarchical estimators answer workloads through a
closed-form vectorised canonical B-adic decomposition (at most two
contiguous node runs per level, summed with one prefix-sum gather each),
and ``HaarEstimator.range_queries_from_coefficients`` evaluates all the
coefficients a workload cuts with ``O(log D)`` vector gathers.  The old
single-query methods remain as thin wrappers over the batch kernels.

Performance notes
-----------------

Measured by ``benchmarks/bench_queries.py`` (results checked in at
``BENCH_queries.json``; Python 3.12, one core): on a 10,000-query random
range workload at ``D = 2^16`` the batch kernels answer ~1.4M queries/sec
for the inconsistent hierarchical estimator versus ~17K/sec for the
per-query decomposition loop (~82x), ~171M/sec versus ~77K/sec for the
consistent (prefix-sum) path (~2,200x), ~2.5M/sec versus ~9.7K/sec for
HaarHRR's coefficient path (~250x), and ~7.6M/sec versus ~159K/sec for
quantile workloads (~48x).

See ``examples/`` (``sharded_aggregation.py`` in particular) for runnable
end-to-end scripts and ``benchmarks/`` for the reproduction of every table
and figure in the paper.
"""

from __future__ import annotations

import inspect
from typing import Dict, Type

from repro.core import (
    AccumulatorState,
    Domain,
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
    PrivacyParams,
    ProtocolClient,
    ProtocolServer,
    ProtocolUsageError,
    RangeQueryEstimator,
    RangeQueryProtocol,
    RangeSpec,
    Report,
    ReproError,
    load_server,
    protocol_from_spec,
)
from repro.core.postprocess import (
    PostPipeline,
    PostProcessor,
    available_pipelines,
    make_pipeline,
)
from repro.engine import Engine, EpochSession, last
from repro.flat import FlatRangeQuery
from repro.frequency_oracles import make_oracle
from repro.hierarchy import HierarchicalHistogram
from repro.multidim import HierarchicalGrid2D
from repro.wavelet import HaarHRR

__version__ = "1.10.0"

#: Protocol registry used by the experiment harness and the CLI.  Classes
#: may expose a ``from_registry(domain_size, epsilon, **kwargs)`` adapter
#: when their natural constructor takes a different shape (the 2-D grid).
PROTOCOL_REGISTRY: Dict[str, Type] = {
    "flat": FlatRangeQuery,
    "hh": HierarchicalHistogram,
    "haar": HaarHRR,
    "grid2d": HierarchicalGrid2D,
}

#: Alternative handles accepted by :func:`make_protocol`.
PROTOCOL_ALIASES: Dict[str, str] = {
    "wavelet": "haar",
    "grid": "grid2d",
}


def _registry_builder(cls: Type):
    """The callable that constructs ``cls`` from registry arguments."""
    return getattr(cls, "from_registry", cls)


def accepted_protocol_kwargs(cls: Type) -> list:
    """Keyword parameters a protocol constructor accepts beyond the basics.

    Public so tooling (the CLI, the experiment harness) can introspect
    registry entries the same way :func:`make_protocol` does.
    """
    builder = _registry_builder(cls)
    target = builder.__init__ if builder is cls else builder
    parameters = inspect.signature(target).parameters
    return [
        name
        for name in parameters
        if name not in ("self", "cls", "domain_size", "epsilon")
    ]


def make_protocol(name: str, domain_size: int, epsilon: float, **kwargs):
    """Construct a range-query protocol by registry handle.

    ``name`` is one of ``"flat"``, ``"hh"``, ``"haar"`` (alias
    ``"wavelet"``) or ``"grid2d"`` (alias ``"grid"``); keyword arguments
    are forwarded to the protocol constructor (e.g. ``branching=8,
    oracle="hrr", consistency=True`` for the hierarchical method, or
    ``domain_size_y=512`` for a non-square grid).  Unknown keyword
    arguments raise a ``TypeError`` naming the handle and the parameters it
    accepts.
    """
    key = name.strip().lower()
    key = PROTOCOL_ALIASES.get(key, key)
    if key not in PROTOCOL_REGISTRY:
        known = sorted(set(PROTOCOL_REGISTRY) | set(PROTOCOL_ALIASES))
        raise KeyError(f"unknown protocol {name!r}; expected one of {known}")
    cls = PROTOCOL_REGISTRY[key]
    builder = _registry_builder(cls)
    accepted = accepted_protocol_kwargs(cls)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise TypeError(
            f"protocol {key!r} ({cls.__name__}) got unexpected keyword "
            f"argument(s) {unknown}; accepted parameters: {accepted}"
        )
    try:
        return builder(domain_size, epsilon, **kwargs)
    except TypeError as exc:
        # Constructor-level TypeErrors (e.g. wrong value types) still get
        # the registry context instead of a bare traceback.
        raise TypeError(
            f"could not construct protocol {key!r} ({cls.__name__}) with "
            f"kwargs {sorted(kwargs)}; accepted parameters: {accepted}"
        ) from exc


__all__ = [
    "__version__",
    "Domain",
    "PrivacyParams",
    "RangeSpec",
    "ReproError",
    "InvalidDomainError",
    "InvalidPrivacyBudgetError",
    "InvalidRangeError",
    "ProtocolUsageError",
    "RangeQueryEstimator",
    "RangeQueryProtocol",
    "ProtocolClient",
    "ProtocolServer",
    "Report",
    "AccumulatorState",
    "Engine",
    "EpochSession",
    "last",
    "FlatRangeQuery",
    "HierarchicalHistogram",
    "HaarHRR",
    "HierarchicalGrid2D",
    "PostPipeline",
    "PostProcessor",
    "available_pipelines",
    "make_pipeline",
    "make_oracle",
    "make_protocol",
    "accepted_protocol_kwargs",
    "protocol_from_spec",
    "load_server",
    "PROTOCOL_REGISTRY",
    "PROTOCOL_ALIASES",
]
