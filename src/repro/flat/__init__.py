"""Flat (per-item) range query methods (Section 4.2).

The baseline the paper compares against: run a single frequency oracle over
the whole domain and answer a range query by summing the per-item
estimates.  Accurate for point queries, but the variance grows linearly
with the range length (Fact 1).
"""

from repro.flat.flat import FlatClient, FlatEstimator, FlatRangeQuery, FlatServer

__all__ = ["FlatClient", "FlatEstimator", "FlatRangeQuery", "FlatServer"]
