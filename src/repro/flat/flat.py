"""Flat range-query methods: sum per-item frequency-oracle estimates.

"Flat" is the paper's name for the natural baseline (Section 4.2): every
user reports her item through a frequency oracle over the whole domain and
a range query ``[a, b]`` is answered by summing the ``b - a + 1`` estimated
item frequencies.  Fact 1 shows the variance of such an answer is
``r * V_F`` -- linear in the range length -- which is exactly the weakness
the hierarchical and wavelet methods fix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain
from repro.frequency_oracles import make_oracle
from repro.frequency_oracles.base import standard_oracle_variance


class FlatEstimator(RangeQueryEstimator):
    """Per-item frequency estimates; ranges are sums of point estimates."""

    def __init__(self, domain: Domain, frequencies: np.ndarray) -> None:
        super().__init__(domain)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (domain.size,):
            raise ProtocolUsageError(
                f"expected {domain.size} frequency estimates, got shape {frequencies.shape}"
            )
        self._frequencies = frequencies

    def estimated_frequencies(self) -> np.ndarray:
        return self._frequencies.copy()


class FlatRangeQuery(RangeQueryProtocol):
    """Flat protocol instantiated by a choice of frequency oracle.

    Parameters
    ----------
    domain_size, epsilon:
        As usual.
    oracle:
        Frequency-oracle handle (``"oue"`` by default, matching the paper's
        choice of flat baseline).
    """

    def __init__(self, domain_size: int, epsilon: float, oracle: str = "oue") -> None:
        super().__init__(domain_size, epsilon)
        self._oracle_name = oracle.strip().lower()
        self.name = f"Flat{self._oracle_name.upper()}"

    @property
    def oracle_name(self) -> str:
        """Handle of the underlying frequency oracle."""
        return self._oracle_name

    def _make_oracle(self):
        return make_oracle(self._oracle_name, self.domain_size, self.epsilon)

    def run(self, items: np.ndarray, rng: RngLike = None) -> FlatEstimator:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        if len(items) == 0:
            raise ProtocolUsageError("cannot run the protocol with zero users")
        oracle = self._make_oracle()
        frequencies = oracle.estimate(items, rng=rng)
        return FlatEstimator(self.domain, frequencies)

    def run_simulated(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> FlatEstimator:
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must have length {self.domain_size}, got {counts.shape}"
            )
        if counts.sum() <= 0:
            raise ProtocolUsageError("cannot simulate the protocol with zero users")
        oracle = self._make_oracle()
        frequencies = oracle.estimate_from_counts(counts, rng=rng)
        return FlatEstimator(self.domain, frequencies)

    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Fact 1: ``Var = r * V_F``."""
        if range_length < 1 or range_length > self.domain_size:
            raise ValueError(
                f"range_length must be in [1, {self.domain_size}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return range_length * standard_oracle_variance(self.epsilon) / n_users

    def average_worst_case_error(self, n_users: int) -> float:
        """Lemma 4.2: average squared error over all ranges is ``(D+2) V_F / 3``."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return (self.domain_size + 2) * standard_oracle_variance(self.epsilon) / (3.0 * n_users)
