"""Flat range-query methods: sum per-item frequency-oracle estimates.

"Flat" is the paper's name for the natural baseline (Section 4.2): every
user reports her item through a frequency oracle over the whole domain and
a range query ``[a, b]`` is answered by summing the ``b - a + 1`` estimated
item frequencies.  Fact 1 shows the variance of such an answer is
``r * V_F`` -- linear in the range length -- which is exactly the weakness
the hierarchical and wavelet methods fix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng
from repro.core.session import (
    AccumulatorState,
    CompositeAccumulator,
    FlatReport,
    ProtocolClient,
    ProtocolServer,
    Report,
)
from repro.core.types import Domain
from repro.frequency_oracles import make_oracle
from repro.frequency_oracles.base import standard_oracle_variance


class FlatEstimator(RangeQueryEstimator):
    """Per-item frequency estimates; ranges are sums of point estimates."""

    def __init__(self, domain: Domain, frequencies: np.ndarray) -> None:
        super().__init__(domain)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (domain.size,):
            raise ProtocolUsageError(
                f"expected {domain.size} frequency estimates, got shape {frequencies.shape}"
            )
        self._frequencies = frequencies

    def estimated_frequencies(self) -> np.ndarray:
        return self._frequencies.copy()


class FlatClient(ProtocolClient):
    """User-side encoder of the flat protocol: one oracle report per user."""

    def __init__(self, protocol: "FlatRangeQuery") -> None:
        super().__init__(protocol)
        self._oracle = protocol._make_oracle()

    def encode_batch(self, items: np.ndarray, rng: RngLike = None) -> FlatReport:
        rng = ensure_rng(rng)
        items = self._protocol.domain.validate_items(np.asarray(items))
        if len(items) == 0:
            return FlatReport(payload=None, n_users=0)
        payload = self._oracle.privatize(items, rng=rng)
        return FlatReport(payload=payload, n_users=len(items))


class FlatServer(ProtocolServer):
    """Aggregator of the flat protocol: a single oracle accumulator."""

    def __init__(
        self, protocol: "FlatRangeQuery", state: Optional[AccumulatorState] = None
    ) -> None:
        self._oracle = protocol._make_oracle()
        super().__init__(protocol, state)

    def _empty_state(self) -> CompositeAccumulator:
        return CompositeAccumulator(
            "flat",
            {"protocol": self._protocol.spec()},
            [self._oracle.make_accumulator()],
        )

    def _ingest_one(self, report: Report) -> None:
        if not isinstance(report, FlatReport):
            raise ProtocolUsageError(
                f"flat server cannot ingest a {type(report).__name__}"
            )
        if report.n_users <= 0:
            return
        self._oracle.accumulate(
            self._state.children[0], report.payload, n_users=report.n_users
        )
        self._state.n_users += report.n_users

    def finalize(self) -> FlatEstimator:
        self._require_reports()
        frequencies = self._oracle.finalize(self._state.children[0])
        return FlatEstimator(self._protocol.domain, frequencies)


class FlatRangeQuery(RangeQueryProtocol):
    """Flat protocol instantiated by a choice of frequency oracle.

    Parameters
    ----------
    domain_size, epsilon:
        As usual.
    oracle:
        Frequency-oracle handle (``"oue"`` by default, matching the paper's
        choice of flat baseline).
    aggregation_chunk:
        Optional chunk size for the OLH decoding loop (an execution knob
        only; it never changes results and is not part of the protocol
        spec).  Only valid with ``oracle="olh"``.
    """

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        oracle: str = "oue",
        aggregation_chunk: Optional[int] = None,
    ) -> None:
        super().__init__(domain_size, epsilon)
        self._oracle_name = oracle.strip().lower()
        if aggregation_chunk is not None and self._oracle_name != "olh":
            raise ValueError(
                "aggregation_chunk is only supported by the 'olh' oracle"
            )
        self._aggregation_chunk = aggregation_chunk
        self.name = f"Flat{self._oracle_name.upper()}"

    @property
    def oracle_name(self) -> str:
        """Handle of the underlying frequency oracle."""
        return self._oracle_name

    def _make_oracle(self):
        kwargs = {}
        if self._aggregation_chunk is not None:
            kwargs["aggregation_chunk"] = self._aggregation_chunk
        return make_oracle(self._oracle_name, self.domain_size, self.epsilon, **kwargs)

    def client(self) -> FlatClient:
        return FlatClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> FlatServer:
        return FlatServer(self, state)

    def spec(self) -> dict:
        return {
            "name": "flat",
            "domain_size": self.domain_size,
            "epsilon": self.epsilon,
            "oracle": self._oracle_name,
        }

    def run_simulated(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> FlatEstimator:
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must have length {self.domain_size}, got {counts.shape}"
            )
        if counts.sum() <= 0:
            raise ProtocolUsageError("cannot simulate the protocol with zero users")
        oracle = self._make_oracle()
        frequencies = oracle.estimate_from_counts(counts, rng=rng)
        return FlatEstimator(self.domain, frequencies)

    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Fact 1: ``Var = r * V_F``."""
        if range_length < 1 or range_length > self.domain_size:
            raise ValueError(
                f"range_length must be in [1, {self.domain_size}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return range_length * standard_oracle_variance(self.epsilon) / n_users

    def average_worst_case_error(self, n_users: int) -> float:
        """Lemma 4.2: average squared error over all ranges is ``(D+2) V_F / 3``."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return (self.domain_size + 2) * standard_oracle_variance(self.epsilon) / (3.0 * n_users)
