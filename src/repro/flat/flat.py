"""Flat range-query methods: sum per-item frequency-oracle estimates.

"Flat" is the paper's name for the natural baseline (Section 4.2): every
user reports her item through a frequency oracle over the whole domain and
a range query ``[a, b]`` is answered by summing the ``b - a + 1`` estimated
item frequencies.  Fact 1 shows the variance of such an answer is
``r * V_F`` -- linear in the range length -- which is exactly the weakness
the hierarchical and wavelet methods fix.

The runtime roles are the generic decomposition engine instantiated on an
:class:`~repro.core.decomposition.IdentityDecomposition` (a single level
holding the whole domain); only the estimator and the theory live here.
An estimator can be built from any accumulator state of this
configuration -- a live server, a restored snapshot, or a lazily merged
window of epoch shards (``protocol.estimator_from_state(state)``, which
is how :meth:`repro.engine.Engine.estimator` answers windowed queries).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.decomposition import (
    DecomposedRangeQueryProtocol,
    IdentityDecomposition,
)
from repro.core.exceptions import ProtocolUsageError
from repro.core.postprocess import FREQUENCIES, PipelineLike, resolve_postprocess
from repro.core.protocol import RangeQueryEstimator
from repro.core.session import (
    AccumulatorState,
    DecompositionClient,
    DecompositionServer,
)
from repro.core.types import Domain
from repro.frequency_oracles import make_oracle
from repro.frequency_oracles.base import standard_oracle_variance


class FlatEstimator(RangeQueryEstimator):
    """Per-item frequency estimates; ranges are sums of point estimates."""

    def __init__(self, domain: Domain, frequencies: np.ndarray) -> None:
        super().__init__(domain)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (domain.size,):
            raise ProtocolUsageError(
                f"expected {domain.size} frequency estimates, got shape {frequencies.shape}"
            )
        self._frequencies = frequencies

    def estimated_frequencies(self) -> np.ndarray:
        return self._frequencies.copy()


class FlatClient(DecompositionClient):
    """User-side encoder of the flat protocol: one oracle report per user."""


class FlatServer(DecompositionServer):
    """Aggregator of the flat protocol: a single oracle accumulator.

    ``finalize`` works on any state of this configuration, including a
    merged multi-epoch window adopted via ``server(state=...)``.
    """


class FlatRangeQuery(DecomposedRangeQueryProtocol):
    """Flat protocol instantiated by a choice of frequency oracle.

    Parameters
    ----------
    domain_size, epsilon:
        As usual.
    oracle:
        Frequency-oracle handle (``"oue"`` by default, matching the paper's
        choice of flat baseline).
    aggregation_chunk:
        Optional chunk size for the OLH decoding loop (an execution knob
        only; it never changes results and is not part of the protocol
        spec).  Only valid with ``oracle="olh"``.
    postprocess:
        Post-processing pipeline applied to the debiased frequencies at
        assembly time: a registry string (``"none"``, ``"clip"``,
        ``"norm_sub"``, ``"monotone_cdf"``, ``"+"``-combinable) or a
        :class:`~repro.core.postprocess.PostPipeline`.  Default: none.
    """

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        oracle: str = "oue",
        aggregation_chunk: Optional[int] = None,
        postprocess: PipelineLike = None,
    ) -> None:
        super().__init__(domain_size, epsilon)
        self._oracle_name = oracle.strip().lower()
        if aggregation_chunk is not None and self._oracle_name != "olh":
            raise ValueError(
                "aggregation_chunk is only supported by the 'olh' oracle"
            )
        self._aggregation_chunk = aggregation_chunk
        # Validate eagerly so bad pipeline strings fail at construction.
        self._pipeline = resolve_postprocess(postprocess, FREQUENCIES)
        self._postprocess_arg = None if postprocess is None else self._pipeline.spec
        self.name = f"Flat{self._oracle_name.upper()}"

    @property
    def oracle_name(self) -> str:
        """Handle of the underlying frequency oracle."""
        return self._oracle_name

    @property
    def postprocess(self) -> Optional[str]:
        """Registry spelling of the post-processing pipeline (None = none)."""
        return self._postprocess_arg

    def _make_oracle(self):
        kwargs = {}
        if self._aggregation_chunk is not None:
            kwargs["aggregation_chunk"] = self._aggregation_chunk
        return make_oracle(self._oracle_name, self.domain_size, self.epsilon, **kwargs)

    def _build_decomposition(self) -> IdentityDecomposition:
        return IdentityDecomposition(
            self.domain, self._make_oracle, postprocess=self._pipeline
        )

    def client(self) -> FlatClient:
        return FlatClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> FlatServer:
        return FlatServer(self, state)

    def spec(self) -> dict:
        spec = {
            "name": "flat",
            "domain_size": self.domain_size,
            "epsilon": self.epsilon,
            "oracle": self._oracle_name,
        }
        if self._postprocess_arg is not None:
            # Written only when set, so pre-pipeline specs (and the states
            # that embed them) stay byte-identical.
            spec["postprocess"] = self._postprocess_arg
        return spec

    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Fact 1: ``Var = r * V_F``."""
        if range_length < 1 or range_length > self.domain_size:
            raise ValueError(
                f"range_length must be in [1, {self.domain_size}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return range_length * standard_oracle_variance(self.epsilon) / n_users

    def average_worst_case_error(self, n_users: int) -> float:
        """Lemma 4.2: average squared error over all ranges is ``(D+2) V_F / 3``."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return (self.domain_size + 2) * standard_oracle_variance(self.epsilon) / (3.0 * n_users)
