"""Range-query workloads used by the paper's evaluation (Section 5).

Two workload generators are needed:

* :func:`all_range_queries` enumerates every one of the ``D choose 2``-ish
  closed ranges (feasible for small and medium domains, which is how the
  paper evaluates ``D = 2^8`` and ``2^16``);
* :func:`sampled_range_queries` reproduces the paper's scalable sampling
  strategy for large domains: pick evenly spaced starting points and
  evaluate every range that begins at each of them.

Workloads are *array-native*: the canonical representation is
:class:`RangeWorkload`, a pair of ``int64`` arrays ``(lefts, rights)``
validated once at construction.  Estimators answer a whole workload with
pure NumPy kernels (see :meth:`repro.core.protocol.RangeQueryEstimator.
range_queries_batch`), so figure reproductions never materialise millions
of per-query Python objects.  The original list-of-:class:`RangeSpec`
generators are kept as thin wrappers for callers that want individual
query objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.core.exceptions import InvalidRangeError
from repro.core.protocol import as_query_arrays, validate_query_arrays
from repro.core.types import RangeSpec


class RangeWorkload:
    """A batch of closed range queries held as parallel ``int64`` arrays.

    Parameters
    ----------
    lefts, rights:
        Equal-length 1-D integer arrays of inclusive endpoints.
    domain_size:
        Optional domain bound; when given, every query is validated
        against it once, here, so downstream kernels skip per-query
        checks.

    The constructor performs the one-shot validation (``0 <= left <=
    right`` element-wise, plus the domain bound when known); estimators
    re-check only the domain bound, vectorised, at query time.
    """

    __slots__ = ("lefts", "rights")

    def __init__(
        self,
        lefts: np.ndarray,
        rights: np.ndarray,
        domain_size: Optional[int] = None,
    ) -> None:
        self.lefts, self.rights = validate_query_arrays(
            lefts, rights, None if domain_size is None else int(domain_size)
        )

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.lefts.size)

    def __iter__(self) -> Iterator[RangeSpec]:
        """Yield per-query :class:`RangeSpec` objects (compatibility path)."""
        for left, right in zip(self.lefts.tolist(), self.rights.tolist()):
            yield RangeSpec(left, right)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RangeWorkload(num_queries={len(self)})"

    @property
    def lengths(self) -> np.ndarray:
        """Length ``r`` of every query (``rights - lefts + 1``)."""
        return self.rights - self.lefts + 1

    def validate_for_domain(self, domain_size: int) -> "RangeWorkload":
        """Raise :class:`InvalidRangeError` if any query exceeds the domain."""
        validate_query_arrays(self.lefts, self.rights, int(domain_size))
        return self

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_queries(
        cls,
        queries: Union["RangeWorkload", Iterable],
        domain_size: Optional[int] = None,
    ) -> "RangeWorkload":
        """Coerce specs, ``(left, right)`` pairs or a workload into a workload."""
        if isinstance(queries, RangeWorkload):
            if domain_size is not None:
                queries.validate_for_domain(int(domain_size))
            return queries
        return cls(*as_query_arrays(queries), domain_size=domain_size)

    def as_specs(self) -> List[RangeSpec]:
        """Materialise the per-query :class:`RangeSpec` objects."""
        return list(self)

    # ------------------------------------------------------------------ #
    # grouping
    # ------------------------------------------------------------------ #
    def group_indices_by_length(self) -> Dict[int, np.ndarray]:
        """Query indices grouped by range length (for per-length metrics)."""
        grouped: Dict[int, np.ndarray] = {}
        if not len(self):
            return grouped
        lengths = self.lengths
        for length in np.unique(lengths):
            grouped[int(length)] = np.flatnonzero(lengths == length)
        return grouped


# --------------------------------------------------------------------- #
# array-native workload generators
# --------------------------------------------------------------------- #
def all_range_workload(domain_size: int, min_length: int = 1) -> RangeWorkload:
    """Every closed range ``[a, b]`` with ``b - a + 1 >= min_length``.

    Built with a single pair of vectorised index expansions -- no Python
    loop over the ``O(D^2)`` queries.
    """
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    starts = np.arange(domain_size, dtype=np.int64)
    counts = np.maximum(domain_size - (starts + min_length - 1), 0)
    lefts = np.repeat(starts, counts)
    # For each left endpoint the rights run [left + min_length - 1, D - 1].
    offsets = np.arange(lefts.size, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts[:-1]))), counts
    )
    rights = lefts + min_length - 1 + offsets
    return RangeWorkload(lefts, rights, domain_size)


def length_workload(domain_size: int, length: int) -> RangeWorkload:
    """All ``D - r + 1`` ranges of an exact length ``r``."""
    if length < 1 or length > domain_size:
        raise InvalidRangeError(f"length must be in [1, {domain_size}], got {length}")
    lefts = np.arange(domain_size - length + 1, dtype=np.int64)
    return RangeWorkload(lefts, lefts + length - 1, domain_size)


def sampled_range_workload(
    domain_size: int,
    num_start_points: int,
    lengths: Optional[Sequence[int]] = None,
) -> RangeWorkload:
    """The paper's large-domain workload: evenly spaced starting points.

    For each of ``num_start_points`` evenly spaced values of ``a`` we emit
    ranges ``[a, a + r - 1]`` for every requested length ``r`` (by default a
    geometric ladder of lengths up to the domain size) that fits inside the
    domain.
    """
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if num_start_points < 1:
        raise ValueError(f"num_start_points must be >= 1, got {num_start_points}")
    starts = np.unique(
        np.linspace(0, domain_size - 1, num=num_start_points, dtype=np.int64)
    )
    if lengths is None:
        lengths = geometric_lengths(domain_size)
    length_arr = np.asarray(list(lengths), dtype=np.int64)
    lefts = np.repeat(starts, len(length_arr))
    rights = lefts + np.tile(length_arr, len(starts)) - 1
    keep = rights < domain_size
    return RangeWorkload(lefts[keep], rights[keep], domain_size)


def prefix_workload(domain_size: int) -> RangeWorkload:
    """All prefix queries ``[0, b]`` (Section 4.7)."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    rights = np.arange(domain_size, dtype=np.int64)
    return RangeWorkload(np.zeros(domain_size, np.int64), rights, domain_size)


def random_range_workload(
    domain_size: int, num_queries: int, rng: np.random.Generator
) -> RangeWorkload:
    """``num_queries`` uniformly random closed ranges (benchmarks, tests)."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if num_queries < 0:
        raise ValueError(f"num_queries must be >= 0, got {num_queries}")
    endpoints = rng.integers(0, domain_size, size=(num_queries, 2))
    lefts = np.minimum(endpoints[:, 0], endpoints[:, 1])
    rights = np.maximum(endpoints[:, 0], endpoints[:, 1])
    return RangeWorkload(lefts, rights, domain_size)


# --------------------------------------------------------------------- #
# RangeSpec-list wrappers (original API, kept for per-query callers)
# --------------------------------------------------------------------- #
def all_range_queries(domain_size: int, min_length: int = 1) -> List[RangeSpec]:
    """Every closed range ``[a, b]`` with ``b - a + 1 >= min_length``."""
    return all_range_workload(domain_size, min_length).as_specs()


def all_queries_of_length(domain_size: int, length: int) -> List[RangeSpec]:
    """All ``D - r + 1`` ranges of an exact length ``r``."""
    return length_workload(domain_size, length).as_specs()


def sampled_range_queries(
    domain_size: int,
    num_start_points: int,
    lengths: Optional[Sequence[int]] = None,
) -> List[RangeSpec]:
    """List-of-specs form of :func:`sampled_range_workload`."""
    return sampled_range_workload(domain_size, num_start_points, lengths).as_specs()


def geometric_lengths(domain_size: int, base: int = 2) -> List[int]:
    """A geometric ladder of range lengths ``1, base, base^2, ..., ~D``."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    lengths = []
    value = 1
    while value < domain_size:
        lengths.append(value)
        value *= base
    lengths.append(domain_size - 1 if domain_size > 1 else 1)
    return sorted(set(lengths))


def prefix_queries(domain_size: int) -> List[RangeSpec]:
    """All prefix queries ``[0, b]`` as :class:`RangeSpec` objects."""
    return prefix_workload(domain_size).as_specs()


def group_by_length(queries: Iterable[RangeSpec]) -> Dict[int, List[RangeSpec]]:
    """Group queries by their length ``r``."""
    grouped: Dict[int, List[RangeSpec]] = {}
    for query in queries:
        grouped.setdefault(query.length, []).append(query)
    return grouped


def true_answers(
    queries: Union[RangeWorkload, Sequence[RangeSpec]], frequencies: np.ndarray
) -> np.ndarray:
    """Exact answers of every query against a frequency vector.

    Accepts either an array-native :class:`RangeWorkload` or a sequence of
    :class:`RangeSpec`; both are answered with one prefix-sum gather.
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    workload = RangeWorkload.from_queries(queries)
    if not len(workload):
        return np.zeros(0)
    if int(workload.rights.max()) >= len(freqs):
        raise InvalidRangeError("a query exceeds the frequency vector length")
    prefix = np.concatenate(([0.0], np.cumsum(freqs)))
    return prefix[workload.rights + 1] - prefix[workload.lefts]
