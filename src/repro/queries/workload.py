"""Range-query workloads used by the paper's evaluation (Section 5).

Two workload generators are needed:

* :func:`all_range_queries` enumerates every one of the ``D choose 2``-ish
  closed ranges (feasible for small and medium domains, which is how the
  paper evaluates ``D = 2^8`` and ``2^16``);
* :func:`sampled_range_queries` reproduces the paper's scalable sampling
  strategy for large domains: pick evenly spaced starting points and
  evaluate every range that begins at each of them.

Both return lists of :class:`~repro.core.types.RangeSpec`, plus helpers to
group queries by length (Figure 4 plots error per query length) and to
compute exact answers in bulk.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import InvalidRangeError
from repro.core.types import RangeSpec


def all_range_queries(domain_size: int, min_length: int = 1) -> List[RangeSpec]:
    """Every closed range ``[a, b]`` with ``b - a + 1 >= min_length``."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    queries: List[RangeSpec] = []
    for left in range(domain_size):
        for right in range(left + min_length - 1, domain_size):
            queries.append(RangeSpec(left, right))
    return queries


def all_queries_of_length(domain_size: int, length: int) -> List[RangeSpec]:
    """All ``D - r + 1`` ranges of an exact length ``r``."""
    if length < 1 or length > domain_size:
        raise InvalidRangeError(
            f"length must be in [1, {domain_size}], got {length}"
        )
    return [RangeSpec(left, left + length - 1) for left in range(domain_size - length + 1)]


def sampled_range_queries(
    domain_size: int,
    num_start_points: int,
    lengths: Optional[Sequence[int]] = None,
) -> List[RangeSpec]:
    """The paper's large-domain workload: evenly spaced starting points.

    For each of ``num_start_points`` evenly spaced values of ``a`` we emit
    ranges ``[a, a + r - 1]`` for every requested length ``r`` (by default a
    geometric ladder of lengths up to the domain size) that fits inside the
    domain.
    """
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if num_start_points < 1:
        raise ValueError(f"num_start_points must be >= 1, got {num_start_points}")
    starts = np.unique(
        np.linspace(0, domain_size - 1, num=num_start_points, dtype=np.int64)
    )
    if lengths is None:
        lengths = geometric_lengths(domain_size)
    queries: List[RangeSpec] = []
    for start in starts:
        for length in lengths:
            right = int(start) + int(length) - 1
            if right < domain_size:
                queries.append(RangeSpec(int(start), right))
    return queries


def geometric_lengths(domain_size: int, base: int = 2) -> List[int]:
    """A geometric ladder of range lengths ``1, base, base^2, ..., ~D``."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    lengths = []
    value = 1
    while value < domain_size:
        lengths.append(value)
        value *= base
    lengths.append(domain_size - 1 if domain_size > 1 else 1)
    return sorted(set(lengths))


def prefix_queries(domain_size: int) -> List[RangeSpec]:
    """All prefix queries ``[0, b]`` (Section 4.7)."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    return [RangeSpec(0, right) for right in range(domain_size)]


def group_by_length(queries: Iterable[RangeSpec]) -> Dict[int, List[RangeSpec]]:
    """Group queries by their length ``r``."""
    grouped: Dict[int, List[RangeSpec]] = {}
    for query in queries:
        grouped.setdefault(query.length, []).append(query)
    return grouped


def true_answers(queries: Sequence[RangeSpec], frequencies: np.ndarray) -> np.ndarray:
    """Exact answers of every query against a frequency vector."""
    freqs = np.asarray(frequencies, dtype=np.float64)
    prefix = np.concatenate(([0.0], np.cumsum(freqs)))
    if not queries:
        return np.zeros(0)
    lefts = np.fromiter((q.left for q in queries), dtype=np.int64, count=len(queries))
    rights = np.fromiter((q.right for q in queries), dtype=np.int64, count=len(queries))
    if rights.max() >= len(freqs):
        raise InvalidRangeError("a query exceeds the frequency vector length")
    return prefix[rights + 1] - prefix[lefts]
