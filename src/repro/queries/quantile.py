"""Quantile queries on top of LDP range-query estimators (Section 4.7).

The phi-quantile of the private data is the smallest domain item ``j`` such
that at least a phi fraction of the users hold an item ``<= j``.  Prefix
queries are sufficient: binary-search (or, equivalently, scan the monotone
CDF) for the first prefix whose estimated mass reaches phi.

Two error measures from Definition 4.7 are implemented:

* *value error* -- the squared (or absolute) difference between the returned
  item and the true quantile item;
* *quantile error* -- ``|q - q'|`` where ``q'`` is the true quantile rank of
  the returned item.  This is the measure Figure 9's bottom row reports and
  the one the paper argues is the more meaningful of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.protocol import RangeQueryEstimator


def true_quantile(frequencies: np.ndarray, phi: float) -> int:
    """Exact phi-quantile item of a (fractional) frequency vector."""
    if not 0.0 <= phi <= 1.0:
        raise ValueError(f"phi must be in [0, 1], got {phi}")
    freqs = np.asarray(frequencies, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise ValueError("frequency vector has zero mass")
    cdf = np.cumsum(freqs) / total
    index = int(np.searchsorted(cdf, phi, side="left"))
    return min(index, len(freqs) - 1)


def quantile_rank(frequencies: np.ndarray, item: int) -> float:
    """The quantile rank (CDF value) of ``item`` under the true distribution."""
    freqs = np.asarray(frequencies, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise ValueError("frequency vector has zero mass")
    if item < 0 or item >= len(freqs):
        raise ValueError(f"item {item} outside domain of size {len(freqs)}")
    return float(np.sum(freqs[: item + 1]) / total)


def estimate_quantile(estimator: RangeQueryEstimator, phi: float) -> int:
    """Estimated phi-quantile via the estimator's prefix queries."""
    return estimator.quantile_query(phi)


def quantile_by_binary_search(estimator: RangeQueryEstimator, phi: float) -> int:
    """Estimated phi-quantile using only ``O(log D)`` prefix queries.

    This is the evaluation strategy Section 4.7 describes: binary search for
    the smallest ``j`` whose estimated prefix mass reaches ``phi``.  It does
    not materialise the full CDF, so it is the right tool when the domain is
    huge or when the estimator answers individual prefix queries lazily.

    Because individual prefix estimates are noisy (and hence not exactly
    monotone), the binary search and the full-CDF search can disagree by a
    few positions; both return items whose true rank is close to ``phi``.
    """
    if not 0.0 <= phi <= 1.0:
        raise ValueError(f"phi must be in [0, 1], got {phi}")
    low, high = 0, estimator.domain_size - 1
    while low < high:
        middle = (low + high) // 2
        if estimator.prefix_query(middle) >= phi:
            high = middle
        else:
            low = middle + 1
    return low


@dataclass(frozen=True)
class QuantileEvaluation:
    """Outcome of evaluating one quantile query against the ground truth."""

    phi: float
    estimated_item: int
    true_item: int
    value_error: float
    quantile_error: float


def evaluate_quantiles(
    estimator: RangeQueryEstimator,
    true_frequencies: np.ndarray,
    phis: Sequence[float],
) -> List[QuantileEvaluation]:
    """Evaluate several quantile queries, returning both error measures.

    The estimated and true quantile items and the achieved ranks are all
    computed with vectorised searches; only the result records are built
    per phi.
    """
    phi_arr = np.asarray(phis, dtype=np.float64).reshape(-1)
    freqs = np.asarray(true_frequencies, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise ValueError("frequency vector has zero mass")
    invalid = ~((phi_arr >= 0.0) & (phi_arr <= 1.0))  # also catches NaN
    if np.any(invalid):
        raise ValueError(f"phi must be in [0, 1], got {phi_arr[invalid][0]}")
    estimated = estimator.quantile_queries_batch(phi_arr)
    cdf = np.cumsum(freqs) / total
    truths = np.minimum(
        np.searchsorted(cdf, phi_arr, side="left"), len(freqs) - 1
    ).astype(np.int64)
    achieved_ranks = cdf[estimated]
    return [
        QuantileEvaluation(
            phi=float(phi),
            estimated_item=int(item),
            true_item=int(truth),
            value_error=float(abs(int(item) - int(truth))),
            quantile_error=float(abs(rank - phi)),
        )
        for phi, item, truth, rank in zip(phi_arr, estimated, truths, achieved_ranks)
    ]


def deciles() -> List[float]:
    """The nine decile ranks 0.1 .. 0.9 used by Figure 9."""
    return [round(0.1 * k, 1) for k in range(1, 10)]
