"""Query workloads and derived queries (prefix, CDF, quantiles)."""

from repro.queries.prefix import (
    estimated_cdf,
    monotone_cdf,
    prefix_answers,
    prefix_variance_reduction_factor,
)
from repro.queries.quantile import (
    QuantileEvaluation,
    deciles,
    estimate_quantile,
    evaluate_quantiles,
    quantile_by_binary_search,
    quantile_rank,
    true_quantile,
)
from repro.queries.workload import (
    RangeWorkload,
    all_queries_of_length,
    all_range_queries,
    all_range_workload,
    geometric_lengths,
    group_by_length,
    length_workload,
    prefix_queries,
    prefix_workload,
    random_range_workload,
    sampled_range_queries,
    sampled_range_workload,
    true_answers,
)

__all__ = [
    "RangeWorkload",
    "all_range_workload",
    "length_workload",
    "prefix_workload",
    "random_range_workload",
    "sampled_range_workload",
    "estimated_cdf",
    "monotone_cdf",
    "prefix_answers",
    "prefix_variance_reduction_factor",
    "QuantileEvaluation",
    "deciles",
    "estimate_quantile",
    "evaluate_quantiles",
    "quantile_by_binary_search",
    "quantile_rank",
    "true_quantile",
    "all_queries_of_length",
    "all_range_queries",
    "geometric_lengths",
    "group_by_length",
    "prefix_queries",
    "sampled_range_queries",
    "true_answers",
]
