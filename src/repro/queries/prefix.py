"""Prefix and CDF queries (Section 4.7).

A prefix query fixes the left endpoint of the range at the first domain
item; the paper shows the hierarchical and wavelet methods answer prefixes
with roughly half the variance of an arbitrary range of the same length
(only one fringe of the query cuts tree nodes).  This module provides thin,
well-tested helpers on top of any :class:`RangeQueryEstimator`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.postprocess import MonotoneCdf
from repro.core.protocol import RangeQueryEstimator


def prefix_answers(estimator: RangeQueryEstimator, endpoints: Sequence[int]) -> np.ndarray:
    """Estimated prefix masses ``P[z <= b]`` for each requested endpoint.

    Delegates to the estimator's batch kernel, so the whole endpoint array
    is answered with one vectorised pass.
    """
    return estimator.prefix_queries(np.asarray(endpoints, dtype=np.int64))


def estimated_cdf(estimator: RangeQueryEstimator) -> np.ndarray:
    """The full estimated CDF over the domain."""
    return estimator.cdf()


def monotone_cdf(estimator: RangeQueryEstimator) -> np.ndarray:
    """CDF post-processed to be monotone non-decreasing and clipped to [0, 1].

    Isotonic-style clean-up is a valid post-processing step under LDP (it
    only touches the already-privatized output) and is what the quantile
    search uses internally.  Delegates to the
    :class:`~repro.core.postprocess.MonotoneCdf` processor of the unified
    post-processing pipeline; the estimator's own cached monotone-CDF fast
    path (used by batch quantile queries) is unaffected.
    """
    return MonotoneCdf.monotonize(estimator.cdf(), clip=True)


def prefix_variance_reduction_factor() -> float:
    """Theoretical variance ratio prefix/range from Section 4.7 (one fringe)."""
    return 0.5
