"""Synthetic populations for experiments and examples."""

from repro.data.synthetic import (
    DISTRIBUTIONS,
    SyntheticDataset,
    cauchy_population,
    gaussian_population,
    make_population,
    uniform_population,
    zipf_population,
)

__all__ = [
    "DISTRIBUTIONS",
    "SyntheticDataset",
    "cauchy_population",
    "gaussian_population",
    "make_population",
    "uniform_population",
    "zipf_population",
]
