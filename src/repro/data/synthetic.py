"""Synthetic data generators used in the evaluation (Section 5).

The paper evaluates on synthetic data drawn from a (truncated, discretised)
Cauchy distribution whose centre sits at ``P * D`` for a shift parameter
``0 < P < 1`` and whose scale ("height") defaults to ``D / 10``.  Values
falling outside the domain are dropped and re-drawn, matching the paper's
"drop any values that fall outside [D]" convention while keeping the
requested population size.

For robustness experiments we also provide Zipf, (discretised) Gaussian and
uniform generators; the paper notes its conclusions are insensitive to the
data distribution, and our test-suite checks the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.core.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated population and its exact summary statistics."""

    items: np.ndarray
    domain_size: int

    @property
    def n_users(self) -> int:
        """Number of users (items)."""
        return len(self.items)

    def counts(self) -> np.ndarray:
        """Exact histogram of the population."""
        return np.bincount(self.items, minlength=self.domain_size).astype(np.float64)

    def frequencies(self) -> np.ndarray:
        """Exact fractional frequencies."""
        counts = self.counts()
        return counts / counts.sum() if counts.sum() > 0 else counts


def cauchy_population(
    domain_size: int,
    n_users: int,
    center_fraction: float = 0.4,
    height: float = None,
    rng: RngLike = None,
    max_batches: int = 1000,
) -> SyntheticDataset:
    """The paper's default workload: a truncated, discretised Cauchy.

    Parameters
    ----------
    domain_size:
        Domain size ``D``.
    n_users:
        Number of users ``N``.
    center_fraction:
        ``P``; the distribution centre is placed at ``P * D``.
    height:
        Cauchy scale parameter; defaults to ``D / 10`` as in the paper.
    rng:
        Seed or generator.
    max_batches:
        Safety bound on the rejection-sampling loop.
    """
    if domain_size < 1:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if n_users < 1:
        raise ValueError(f"n_users must be positive, got {n_users}")
    if not 0.0 < center_fraction < 1.0:
        raise ValueError(f"center_fraction must be in (0, 1), got {center_fraction}")
    rng = ensure_rng(rng)
    if height is None:
        height = domain_size / 10.0
    if height <= 0:
        raise ValueError(f"height must be positive, got {height}")
    center = center_fraction * domain_size
    accepted = np.empty(0, dtype=np.int64)
    for _ in range(max_batches):
        needed = n_users - len(accepted)
        if needed <= 0:
            break
        # Over-draw to amortise rejection of out-of-domain samples.
        draw = rng.standard_cauchy(size=int(needed * 1.6) + 16) * height + center
        values = np.floor(draw).astype(np.int64)
        values = values[(values >= 0) & (values < domain_size)]
        accepted = np.concatenate([accepted, values])
    if len(accepted) < n_users:
        raise RuntimeError(
            "rejection sampling failed to produce enough in-domain values; "
            "check the centre/height parameters"
        )
    return SyntheticDataset(items=accepted[:n_users], domain_size=domain_size)


def zipf_population(
    domain_size: int,
    n_users: int,
    exponent: float = 1.2,
    rng: RngLike = None,
) -> SyntheticDataset:
    """A Zipf-distributed population (head of the domain is heavy)."""
    if domain_size < 1 or n_users < 1:
        raise ValueError("domain_size and n_users must be positive")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = ensure_rng(rng)
    weights = 1.0 / np.power(np.arange(1, domain_size + 1, dtype=np.float64), exponent)
    probabilities = weights / weights.sum()
    items = rng.choice(domain_size, size=n_users, p=probabilities)
    return SyntheticDataset(items=items.astype(np.int64), domain_size=domain_size)


def gaussian_population(
    domain_size: int,
    n_users: int,
    center_fraction: float = 0.5,
    std_fraction: float = 0.15,
    rng: RngLike = None,
) -> SyntheticDataset:
    """A discretised Gaussian population clipped to the domain."""
    if domain_size < 1 or n_users < 1:
        raise ValueError("domain_size and n_users must be positive")
    if not 0.0 < center_fraction < 1.0:
        raise ValueError(f"center_fraction must be in (0, 1), got {center_fraction}")
    if std_fraction <= 0:
        raise ValueError(f"std_fraction must be positive, got {std_fraction}")
    rng = ensure_rng(rng)
    draws = rng.normal(
        loc=center_fraction * domain_size, scale=std_fraction * domain_size, size=n_users
    )
    items = np.clip(np.floor(draws), 0, domain_size - 1).astype(np.int64)
    return SyntheticDataset(items=items, domain_size=domain_size)


def uniform_population(
    domain_size: int, n_users: int, rng: RngLike = None
) -> SyntheticDataset:
    """A uniform population over the domain."""
    if domain_size < 1 or n_users < 1:
        raise ValueError("domain_size and n_users must be positive")
    rng = ensure_rng(rng)
    items = rng.integers(0, domain_size, size=n_users, dtype=np.int64)
    return SyntheticDataset(items=items, domain_size=domain_size)


#: Registry of named generators for the experiment configuration files.
DISTRIBUTIONS: Dict[str, Callable[..., SyntheticDataset]] = {
    "cauchy": cauchy_population,
    "zipf": zipf_population,
    "gaussian": gaussian_population,
    "uniform": uniform_population,
}


def make_population(name: str, domain_size: int, n_users: int, rng: RngLike = None, **kwargs) -> SyntheticDataset:
    """Construct a population by distribution name."""
    key = name.strip().lower()
    if key not in DISTRIBUTIONS:
        raise KeyError(
            f"unknown distribution {name!r}; expected one of {sorted(DISTRIBUTIONS)}"
        )
    return DISTRIBUTIONS[key](domain_size, n_users, rng=rng, **kwargs)
