"""Epsilon-LDP frequency oracles (Section 3.2 of the paper).

The oracles implemented here are the point-query building blocks that every
range-query protocol in :mod:`repro` is assembled from:

* :class:`OptimizedUnaryEncoding` (OUE)
* :class:`OptimalLocalHashing` (OLH)
* :class:`HadamardRandomizedResponse` (HRR)
* :class:`GeneralizedRandomizedResponse` (GRR / k-RR)
* :class:`BinaryRandomizedResponse` (classic Warner randomized response)

Use :func:`make_oracle` to construct one by name, which is how the
hierarchical-histogram protocol lets callers pick its internal primitive
("TreeOUE", "TreeHRR", "TreeOLH" in the paper's terminology).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.frequency_oracles.base import (
    ExactSumAccumulator,
    FrequencyOracle,
    OracleAccumulator,
    standard_oracle_variance,
)
from repro.frequency_oracles.grr import (
    BinaryRandomizedResponse,
    GeneralizedRandomizedResponse,
)
from repro.frequency_oracles.hadamard import (
    fwht,
    hadamard_entry,
    hadamard_matrix,
    ifwht,
    pad_to_power_of_two,
    popcount_parity,
)
from repro.frequency_oracles.histogram_encoding import (
    SummationHistogramEncoding,
    ThresholdHistogramEncoding,
)
from repro.frequency_oracles.hrr import HadamardRandomizedResponse, HadamardReports
from repro.frequency_oracles.olh import LocalHashReports, OptimalLocalHashing
from repro.frequency_oracles.oue import OptimizedUnaryEncoding
from repro.frequency_oracles.sue import SymmetricUnaryEncoding

#: Registry mapping oracle handles to classes.  Handles are lower-case and
#: match the names used throughout the paper and the experiment configs.
ORACLE_REGISTRY: Dict[str, Type[FrequencyOracle]] = {
    "oue": OptimizedUnaryEncoding,
    "olh": OptimalLocalHashing,
    "hrr": HadamardRandomizedResponse,
    "grr": GeneralizedRandomizedResponse,
    "sue": SymmetricUnaryEncoding,
    "she": SummationHistogramEncoding,
    "the": ThresholdHistogramEncoding,
}


def make_oracle(name: str, domain_size: int, epsilon: float, **kwargs) -> FrequencyOracle:
    """Construct a frequency oracle by registry handle.

    Parameters
    ----------
    name:
        One of ``"oue"``, ``"olh"``, ``"hrr"``, ``"grr"`` (case insensitive).
    domain_size, epsilon:
        Passed to the oracle constructor.
    **kwargs:
        Oracle-specific options (e.g. ``num_buckets`` for OLH).
    """
    key = name.strip().lower()
    if key not in ORACLE_REGISTRY:
        raise KeyError(
            f"unknown frequency oracle {name!r}; expected one of "
            f"{sorted(ORACLE_REGISTRY)}"
        )
    return ORACLE_REGISTRY[key](domain_size, epsilon, **kwargs)


__all__ = [
    "FrequencyOracle",
    "OracleAccumulator",
    "ExactSumAccumulator",
    "OptimizedUnaryEncoding",
    "OptimalLocalHashing",
    "HadamardRandomizedResponse",
    "GeneralizedRandomizedResponse",
    "BinaryRandomizedResponse",
    "SymmetricUnaryEncoding",
    "SummationHistogramEncoding",
    "ThresholdHistogramEncoding",
    "HadamardReports",
    "LocalHashReports",
    "ORACLE_REGISTRY",
    "make_oracle",
    "standard_oracle_variance",
    "fwht",
    "ifwht",
    "hadamard_matrix",
    "hadamard_entry",
    "popcount_parity",
    "pad_to_power_of_two",
]
