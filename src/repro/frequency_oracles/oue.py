"""Optimized Unary Encoding (OUE) frequency oracle (Wang et al., 2017).

Each user encodes her item ``v`` as the one-hot vector ``e_v`` of length
``D`` and perturbs every bit independently:

* a 1 bit stays 1 with probability ``1/2``;
* a 0 bit becomes 1 with probability ``1 / (1 + e^eps)``.

The aggregator sums the reported bit-vectors and applies the bias correction

``theta_hat[z] = (sum_i o_i[z] / N - 1/(1+e^eps)) / (1/2 - 1/(1+e^eps))``

which yields the per-item variance ``V_F = 4 e^eps / (N (e^eps - 1)^2)``.

Because every user transmits ``D`` bits, a literal implementation is slow
for large domains.  Following Section 5 of the paper, we also provide the
statistically equivalent aggregate simulation that samples the aggregator's
noisy count of each item as a sum of two Binomials.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import (
    FrequencyOracle,
    OracleAccumulator,
    standard_oracle_variance,
    validate_unary_reports,
)


class OptimizedUnaryEncoding(FrequencyOracle):
    """OUE oracle with both per-user and aggregate-simulation execution."""

    name = "oue"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        # Probability that a true 1-bit is reported as 1.
        self._p_one = 0.5
        # Probability that a true 0-bit is reported as 1.
        self._p_zero = 1.0 / (1.0 + self.privacy.e_eps)

    @property
    def p_one(self) -> float:
        """Probability a set bit stays set."""
        return self._p_one

    @property
    def p_zero(self) -> float:
        """Probability an unset bit is flipped on."""
        return self._p_zero

    # ------------------------------------------------------------------ #
    # per-user protocol
    # ------------------------------------------------------------------ #
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Return an ``(N, D)`` uint8 matrix of perturbed one-hot vectors."""
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        # The two draws below are the only generator activity; the bit
        # perturbation itself (zero-bit thresholding plus resampling each
        # user's true bit) runs in the kernel backend.
        uniforms = rng.random((n, self.domain_size))
        true_uniforms = rng.random(n)
        return self._kernels.unary_perturb(
            uniforms, self._p_zero, items, true_uniforms, self._p_one
        )

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"bit_sums": np.zeros(self.domain_size, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        reports = validate_unary_reports(reports, self.domain_size)
        accumulator.vectors["bit_sums"] += self._kernels.unary_sums(reports)
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        return self._debias(accumulator.vectors["bit_sums"].astype(np.float64), n)

    # ------------------------------------------------------------------ #
    # aggregate simulation (paper, Section 5)
    # ------------------------------------------------------------------ #
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Sample the noisy counts directly: ``Bino(n_z, 1/2) + Bino(N - n_z, p0)``."""
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts).astype(np.int64)
        n = int(counts.sum())
        if n <= 0:
            return np.zeros(self.domain_size)
        ones_from_true = rng.binomial(counts, self._p_one)
        ones_from_false = rng.binomial(n - counts, self._p_zero)
        noisy = (ones_from_true + ones_from_false).astype(np.float64)
        return self._debias(noisy, n)

    def _debias(self, noisy_ones: np.ndarray, n_users: int) -> np.ndarray:
        return (noisy_ones / n_users - self._p_zero) / (self._p_one - self._p_zero)

    def variance_per_user(self) -> float:
        return standard_oracle_variance(self.epsilon)
