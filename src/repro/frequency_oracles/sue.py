"""Symmetric Unary Encoding (SUE), a.k.a. basic one-time RAPPOR.

The predecessor of OUE (Erlingsson et al.'s RAPPOR without Bloom filters and
without the memoization layers): each user perturbs every bit of her one-hot
vector *symmetrically*, keeping it with probability
``p = e^{eps/2} / (1 + e^{eps/2})`` and flipping it otherwise.  OUE improves
on SUE by treating the 1-bit and the 0-bits asymmetrically, which is exactly
the comparison our tests and ablation benchmarks make quantitative: SUE's
variance is strictly worse than OUE's for every epsilon.

Included because the paper's frequency-oracle section surveys the
RAPPOR-style mechanisms as the historical starting point of the area, and
because having a second unary-encoding oracle exercises the HH framework's
oracle-agnostic design.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import (
    FrequencyOracle,
    OracleAccumulator,
    validate_unary_reports,
)


class SymmetricUnaryEncoding(FrequencyOracle):
    """Basic RAPPOR: symmetric per-bit randomized response on one-hot vectors."""

    name = "sue"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        # Each bit individually gets half the budget (two bits can change
        # between neighbouring inputs), giving the e^{eps/2} form.
        half = math.exp(self.privacy.epsilon / 2.0)
        self._p = half / (half + 1.0)
        self._q = 1.0 / (half + 1.0)

    @property
    def keep_probability(self) -> float:
        """Probability that any bit (0 or 1) is reported truthfully."""
        return self._p

    # ------------------------------------------------------------------ #
    # per-user protocol
    # ------------------------------------------------------------------ #
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        uniforms = rng.random((n, self.domain_size))
        true_uniforms = rng.random(n)
        return self._kernels.unary_perturb(
            uniforms, self._q, items, true_uniforms, self._p
        )

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"bit_sums": np.zeros(self.domain_size, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        reports = validate_unary_reports(reports, self.domain_size)
        accumulator.vectors["bit_sums"] += self._kernels.unary_sums(reports)
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        ones = accumulator.vectors["bit_sums"].astype(np.float64)
        return (ones / n - self._q) / (self._p - self._q)

    # ------------------------------------------------------------------ #
    # aggregate simulation
    # ------------------------------------------------------------------ #
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts).astype(np.int64)
        n = int(counts.sum())
        if n <= 0:
            return np.zeros(self.domain_size)
        ones = rng.binomial(counts, self._p) + rng.binomial(n - counts, self._q)
        return (ones.astype(np.float64) / n - self._q) / (self._p - self._q)

    def variance_per_user(self) -> float:
        # Wang et al. 2017, Eq. for SUE: q(1-q)/(p-q)^2 dominates.
        return float(self._q * (1.0 - self._q) / (self._p - self._q) ** 2)
