"""Walsh--Hadamard transform utilities.

The Hadamard Randomized Response oracle and the HaarHRR range-query
protocol both rely on the (unnormalised, +/-1 valued) Walsh--Hadamard
transform.  We implement

* :func:`fwht` -- the fast in-place butterfly transform in ``O(D log D)``;
* :func:`hadamard_entry` -- vectorised evaluation of single matrix entries
  ``(-1)^{<i, j>}`` used when each user only touches one coefficient;
* :func:`hadamard_matrix` -- the explicit matrix, handy for tests and for
  the tiny domains where an explicit matrix is simplest.

Conventions
-----------
We use the *unnormalised* transform ``T = H x`` where
``H[i, j] = (-1)^{popcount(i & j)}``; then ``H H = D I`` so the inverse is
``x = (1/D) H T``.  The paper's matrix (Figure 1) is ``H / sqrt(D)``; keeping
the +/-1 convention internally avoids spraying ``sqrt(D)`` factors through
the estimators and matches what users actually transmit (a single +/-1
value).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import is_power_of, next_power_of


def pad_to_power_of_two(length: int) -> int:
    """Smallest power of two that is at least ``length``."""
    return next_power_of(2, length)


def popcount_parity(values: np.ndarray) -> np.ndarray:
    """Parity (0 or 1) of the number of set bits of each entry.

    Works for non-negative integers up to 64 bits using the folding trick:
    XOR-ing the upper half of the bits into the lower half repeatedly leaves
    the parity in the lowest bit.
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    for shift in (32, 16, 8, 4, 2, 1):
        v ^= v >> np.uint64(shift)
    return (v & np.uint64(1)).astype(np.int64)


def hadamard_entry(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Entries ``H[rows, cols] = (-1)^{popcount(rows & cols)}`` as +/-1 floats."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    parity = popcount_parity(np.bitwise_and(rows, cols))
    return 1.0 - 2.0 * parity


def hadamard_matrix(size: int) -> np.ndarray:
    """Explicit ``size x size`` Hadamard matrix with +/-1 entries.

    ``size`` must be a power of two.  Intended for tests and small domains;
    use :func:`fwht` for anything large.
    """
    if not is_power_of(2, size):
        raise ValueError(f"Hadamard matrix size must be a power of two, got {size}")
    indices = np.arange(size)
    return hadamard_entry(indices[:, None], indices[None, :])


def fwht(vector: np.ndarray) -> np.ndarray:
    """Fast Walsh--Hadamard transform (unnormalised) of a 1-D vector.

    Returns a new array ``T`` with ``T = H @ vector`` where ``H`` is the
    +/-1 Hadamard matrix.  The input length must be a power of two.
    """
    x = np.array(vector, dtype=np.float64, copy=True)
    n = len(x)
    if not is_power_of(2, n):
        raise ValueError(f"fwht input length must be a power of two, got {n}")
    h = 1
    while h < n:
        # Classic butterfly: combine blocks of size 2h pairwise.
        x = x.reshape(-1, 2, h)
        top = x[:, 0, :] + x[:, 1, :]
        bottom = x[:, 0, :] - x[:, 1, :]
        x = np.stack([top, bottom], axis=1).reshape(-1)
        h *= 2
    return x


def ifwht(transformed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fwht` (i.e. ``fwht(t) / D``)."""
    t = np.asarray(transformed, dtype=np.float64)
    return fwht(t) / len(t)
