"""Histogram Encoding oracles: SHE (summation) and THE (thresholding).

Histogram Encoding (Wang et al., 2017) has each user add Laplace noise of
scale ``2 / eps`` to every entry of her one-hot vector (the L1 sensitivity
of a one-hot vector is 2).  Two decoders exist:

* **SHE** (Summation with Histogram Encoding) simply averages the noisy
  vectors; the estimator is unbiased with per-user variance ``8 / eps^2``.
* **THE** (Thresholding with Histogram Encoding) reports, for each item, the
  fraction of users whose noisy entry exceeds a threshold ``theta`` and
  debiases it through the Laplace CDF; with the optimal threshold this
  matches OUE's variance for small epsilon and is included here mainly so
  the oracle comparison benchmarks can quantify the difference.

Neither method is used by the paper's headline protocols (OUE/HRR/OLH are
strictly better on the accuracy/communication trade-off), but they complete
the survey of Section 3.2-era frequency oracles and exercise the
oracle-agnostic design of the hierarchical framework.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import (
    ExactSumAccumulator,
    FrequencyOracle,
    OracleAccumulator,
    validate_unary_reports,
)


def _laplace_sf(x: np.ndarray, scale: float) -> np.ndarray:
    """Survival function P[Laplace(0, scale) > x] for scalar or array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x < 0, 1.0 - 0.5 * np.exp(x / scale), 0.5 * np.exp(-x / scale))


class SummationHistogramEncoding(FrequencyOracle):
    """SHE: per-entry Laplace noise, decoded by plain averaging."""

    name = "she"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        self._scale = 2.0 / self.privacy.epsilon

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``2 / eps`` added to every vector entry."""
        return self._scale

    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        reports = rng.laplace(0.0, self._scale, size=(n, self.domain_size))
        reports[np.arange(n), items] += 1.0
        return reports

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> ExactSumAccumulator:
        # Laplace reports are real-valued, and float sums are not exactly
        # associative; the exact accumulator keeps one column sum per
        # ingested batch and finalizes with math.fsum, which keeps sharded
        # aggregation order-independent (see its docstring).
        return ExactSumAccumulator(
            self.name, self._accumulator_config(), size=self.domain_size
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        reports = np.asarray(reports, dtype=np.float64)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ValueError(
                f"reports must have shape (N, {self.domain_size}), got {reports.shape}"
            )
        if len(reports):
            accumulator.add_batch_sums(reports.sum(axis=0))
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        return accumulator.exact_means(n)

    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts)
        n = counts.sum()
        if n <= 0:
            return np.zeros(self.domain_size)
        # The sum of N independent Laplace variables is approximated by a
        # Gaussian with matching variance (N is large in every experiment);
        # the per-item totals then only need the exact counts added.
        noise_variance = 2.0 * self._scale**2 * n
        totals = counts + rng.normal(0.0, math.sqrt(noise_variance), size=self.domain_size)
        return totals / n

    def variance_per_user(self) -> float:
        return float(2.0 * self._scale**2)


class ThresholdHistogramEncoding(FrequencyOracle):
    """THE: per-entry Laplace noise, decoded by thresholding at ``theta``."""

    name = "the"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        threshold: Optional[float] = None,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        self._scale = 2.0 / self.privacy.epsilon
        if threshold is None:
            # Wang et al. show the optimum lies in (0.5, 1); theta = 0.67 is
            # within a fraction of a percent of optimal across the epsilon
            # range the paper uses.
            threshold = 0.67
        if not 0.0 < threshold < 1.5:
            raise ValueError(f"threshold should be in (0, 1.5), got {threshold}")
        self._theta = float(threshold)
        # Probability a true 1-entry (resp. 0-entry) exceeds the threshold.
        self._p = float(_laplace_sf(np.array(self._theta - 1.0), self._scale))
        self._q = float(_laplace_sf(np.array(self._theta), self._scale))

    @property
    def threshold(self) -> float:
        """The decision threshold ``theta``."""
        return self._theta

    @property
    def hit_probabilities(self) -> tuple:
        """``(p, q)``: threshold-exceedance probabilities for 1- and 0-entries."""
        return (self._p, self._q)

    def _accumulator_config(self) -> dict:
        config = super()._accumulator_config()
        config["threshold"] = self._theta
        return config

    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        noisy = rng.laplace(0.0, self._scale, size=(n, self.domain_size))
        noisy[np.arange(n), items] += 1.0
        return (noisy > self._theta).astype(np.uint8)

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"hit_sums": np.zeros(self.domain_size, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        reports = validate_unary_reports(reports, self.domain_size)
        accumulator.vectors["hit_sums"] += self._kernels.unary_sums(reports)
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        hits = accumulator.vectors["hit_sums"].astype(np.float64)
        return (hits / n - self._q) / (self._p - self._q)

    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts).astype(np.int64)
        n = int(counts.sum())
        if n <= 0:
            return np.zeros(self.domain_size)
        hits = rng.binomial(counts, self._p) + rng.binomial(n - counts, self._q)
        return (hits.astype(np.float64) / n - self._q) / (self._p - self._q)

    def variance_per_user(self) -> float:
        return float(self._q * (1.0 - self._q) / (self._p - self._q) ** 2)
