"""Randomized response oracles: binary RR and generalized (k-ary) RR.

Binary randomized response (Warner, 1965) is the oldest LDP mechanism and
the paper uses it twice: as the perturbation primitive inside Hadamard
Randomized Response, and implicitly for the single root-level Haar
coefficient.  Generalized randomized response (GRR, also called k-RR or
direct encoding) is the categorical extension used inside Optimal Local
Hashing after the input has been hashed into ``g`` buckets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import FrequencyOracle, OracleAccumulator


def _categorical_report_counts(reports: np.ndarray, domain_size: int) -> np.ndarray:
    """Integer histogram of categorical reports, validated against ``D``.

    Back-compat alias of the reference ``categorical_counts`` kernel;
    oracles call the kernel of their resolved backend instead.
    """
    from repro.core.kernels.reference import categorical_counts

    return categorical_counts(reports, domain_size)


class GeneralizedRandomizedResponse(FrequencyOracle):
    """k-ary randomized response (direct encoding) over ``[D]``.

    Perturbation: report the true item with probability
    ``p = e^eps / (e^eps + D - 1)`` and otherwise a uniformly random *other*
    item.  Aggregation: the count of reports equal to ``z`` is debiased by
    ``(count/N - q) / (p - q)`` with ``q = (1 - p) / (D - 1)``.

    GRR is accurate for small domains but its variance grows linearly with
    ``D``; the paper therefore uses it only as an internal component (inside
    OLH) rather than as a range-query primitive.
    """

    name = "grr"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        if self.domain_size < 2:
            raise ValueError("GRR requires a domain of at least 2 items")
        e_eps = self.privacy.e_eps
        self._p = e_eps / (e_eps + self.domain_size - 1)
        self._q = (1.0 - self._p) / (self.domain_size - 1)

    @property
    def keep_probability(self) -> float:
        """Probability ``p`` of reporting the true item."""
        return self._p

    @property
    def lie_probability(self) -> float:
        """Probability ``q`` that a specific *other* item is reported."""
        return self._q

    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        keep = rng.random(n) < self._p
        noise = rng.integers(0, self.domain_size - 1, size=n)
        # The kernel maps noise ~ U[0, D-1) to a uniformly random *other*
        # item by skipping over the true value, then applies the keep mask.
        return self._kernels.grr_perturb(items, keep, noise)

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"report_counts": np.zeros(self.domain_size, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        counts = self._kernels.categorical_counts(reports, self.domain_size)
        accumulator.vectors["report_counts"] += counts
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        counts = accumulator.vectors["report_counts"].astype(np.float64)
        return (counts / n - self._q) / (self._p - self._q)

    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts)
        n = counts.sum()
        if n <= 0:
            return np.zeros(self.domain_size)
        true = counts.astype(np.int64)
        total = int(n)
        # Reports claiming item z come from truthful users holding z and
        # from lying users holding anything else.
        truthful = rng.binomial(true, self._p)
        lying = rng.binomial(total - true, self._q)
        noisy = (truthful + lying).astype(np.float64)
        return (noisy / total - self._q) / (self._p - self._q)

    def variance_per_user(self) -> float:
        # Var of the per-item estimator: q(1-q)/(p-q)^2 plus a term that
        # depends on the item's own frequency; we report the dominant
        # frequency-independent part, as is standard (Wang et al. 2017).
        return float(self._q * (1.0 - self._q) / (self._p - self._q) ** 2)


class BinaryRandomizedResponse(FrequencyOracle):
    """Warner's binary randomized response over the domain ``{0, 1}``.

    Each user holds a bit and reports it truthfully with probability
    ``p = e^eps / (1 + e^eps)``.  Besides serving as a tiny frequency oracle
    on its own, :meth:`privatize_values` / :meth:`debias_values` expose the
    raw +/-1 mechanics needed by Hadamard Randomized Response, where the
    "bit" being perturbed is a Hadamard coefficient in ``{-1, +1}``.
    """

    name = "rr"

    def __init__(
        self, epsilon: float, kernel_backend: Optional[object] = None
    ) -> None:
        super().__init__(2, epsilon, kernel_backend=kernel_backend)
        self._p = self.privacy.keep_probability

    @property
    def keep_probability(self) -> float:
        """Probability of reporting the true bit."""
        return self._p

    # ------------------------------------------------------------------ #
    # +/-1 interface used by HRR and HaarHRR
    # ------------------------------------------------------------------ #
    def privatize_values(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb an array of values in ``{-1, +1}``: flip each w.p. ``1-p``."""
        rng = ensure_rng(rng)
        values = np.asarray(values)
        flips = rng.random(values.shape) < self._p
        signs = np.where(flips, 1.0, -1.0)
        return values * signs

    def debias_values(self, reported: np.ndarray) -> np.ndarray:
        """Debias reports from :meth:`privatize_values` (divide by ``2p-1``)."""
        return np.asarray(reported, dtype=np.float64) / (2.0 * self._p - 1.0)

    # ------------------------------------------------------------------ #
    # FrequencyOracle interface over the binary domain
    # ------------------------------------------------------------------ #
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        keep = rng.random(len(items)) < self._p
        return np.where(keep, items, 1 - items).astype(np.int64)

    def aggregate(
        self, reports: np.ndarray, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"report_counts": np.zeros(2, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: np.ndarray,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        counts = self._kernels.categorical_counts(reports, 2)
        accumulator.vectors["report_counts"] += counts
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        ones = float(accumulator.vectors["report_counts"][1])
        q = 1.0 - self._p
        est_one = (ones / n - q) / (self._p - q)
        return np.array([1.0 - est_one, est_one])

    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts)
        n = int(counts.sum())
        if n <= 0:
            return np.zeros(2)
        ones = int(counts[1])
        noisy_ones = rng.binomial(ones, self._p) + rng.binomial(n - ones, 1.0 - self._p)
        q = 1.0 - self._p
        est_one = (noisy_ones / n - q) / (self._p - q)
        return np.array([1.0 - est_one, est_one])

    def variance_per_user(self) -> float:
        p = self._p
        return float(p * (1.0 - p) / (2.0 * p - 1.0) ** 2)
