"""Hadamard Randomized Response (HRR) frequency oracle.

Each user holding item ``v`` conceptually forms the one-hot vector ``e_v``,
takes its (+/-1 scaled) Walsh--Hadamard transform, samples a *single*
coefficient index ``j`` uniformly at random and perturbs the +/-1 value
``H[v, j]`` with binary randomized response.  The report is just the pair
``(j, perturbed value)`` -- ``log2(D) + 1`` bits -- which makes HRR the most
communication-frugal of the standard oracles.

The aggregator debiases each report by ``1 / (2p - 1)``, averages the
debiased values per coefficient (scaling by ``D`` to account for the
uniform sampling of indices), and inverts the transform to obtain unbiased
frequency estimates.  The per-item variance equals the common
``4 e^eps / (N (e^eps - 1)^2)`` bound.

This implementation additionally supports *signed* items: a user may hold
``-e_v`` instead of ``e_v`` (its transform is just the negated row), which
is exactly what the HaarHRR range-query protocol needs, because a Haar
coefficient at a given level is a signed one-hot vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import (
    FrequencyOracle,
    OracleAccumulator,
    standard_oracle_variance,
)
from repro.frequency_oracles.hadamard import fwht, pad_to_power_of_two


@dataclass
class HadamardReports:
    """Reports collected from HRR users.

    Attributes
    ----------
    indices:
        The Hadamard coefficient index sampled by each user.
    values:
        The perturbed +/-1 coefficient value reported by each user.
    padded_size:
        The (power of two) transform length the indices refer to.
    """

    indices: np.ndarray
    values: np.ndarray
    padded_size: int

    def __len__(self) -> int:
        return len(self.indices)


class HadamardRandomizedResponse(FrequencyOracle):
    """HRR oracle over a domain of size ``D`` (padded to a power of two)."""

    name = "hrr"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        self._padded = pad_to_power_of_two(self.domain_size)
        self._p = self.privacy.keep_probability

    @property
    def padded_size(self) -> int:
        """The power-of-two length the Hadamard transform is taken over."""
        return self._padded

    @property
    def keep_probability(self) -> float:
        """Binary randomized response keep probability ``p``."""
        return self._p

    # ------------------------------------------------------------------ #
    # per-user protocol
    # ------------------------------------------------------------------ #
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> HadamardReports:
        items = self.domain.validate_items(np.asarray(items))
        return self.privatize_signed(items, np.ones(len(items)), rng=rng)

    def privatize_signed(
        self, items: np.ndarray, signs: np.ndarray, rng: RngLike = None
    ) -> HadamardReports:
        """Privatize signed one-hot inputs ``signs[i] * e_{items[i]}``.

        ``signs`` must contain only ``+1`` and ``-1`` values.  Used directly
        by the HaarHRR protocol.
        """
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        signs = np.asarray(signs, dtype=np.float64)
        if signs.shape != items.shape:
            raise ValueError("signs must have the same shape as items")
        if not np.all(np.isin(signs, (-1.0, 1.0))):
            raise ValueError("signs must be +1 or -1")
        n = len(items)
        indices = rng.integers(0, self._padded, size=n)
        keep = rng.random(n) < self._p
        # Fused Hadamard-entry evaluation + sign application + randomized
        # response flip; the two draws above are the only generator use.
        reported = self._kernels.hrr_encode(items, signs, indices, keep)
        return HadamardReports(indices=indices, values=reported, padded_size=self._padded)

    def aggregate(
        self, reports: HadamardReports, n_users: Optional[int] = None
    ) -> np.ndarray:
        coefficients = self.aggregate_coefficients(reports, n_users=n_users)
        # Invert the unnormalised transform: x = (1/Dpad) H T.
        estimates = fwht(coefficients) / self._padded
        return estimates[: self.domain_size]

    def aggregate_coefficients(
        self, reports: HadamardReports, n_users: Optional[int] = None
    ) -> np.ndarray:
        """Unbiased estimates of the unnormalised Hadamard transform.

        Returns the length-``padded_size`` vector ``T_hat`` estimating
        ``H @ f`` where ``f`` is the fractional frequency vector (padded
        with zeros).  Exposed separately because HaarHRR consumes the
        coefficients directly.
        """
        if reports.padded_size != self._padded:
            raise ValueError(
                "reports were produced for a different transform length "
                f"({reports.padded_size} != {self._padded})"
            )
        n = int(n_users) if n_users is not None else len(reports)
        if n <= 0:
            raise ValueError("cannot aggregate zero reports")
        debiased = np.asarray(reports.values, dtype=np.float64) / (2.0 * self._p - 1.0)
        sums = np.bincount(
            np.asarray(reports.indices, dtype=np.int64),
            weights=debiased,
            minlength=self._padded,
        )
        # Each user sampled one of Dpad coefficients uniformly, so the sum
        # for coefficient j estimates (1/Dpad) * sum_i H[v_i, j]; rescale.
        return sums * (self._padded / n)

    # ------------------------------------------------------------------ #
    # streaming aggregation
    # ------------------------------------------------------------------ #
    def _accumulator_config(self) -> dict:
        config = super()._accumulator_config()
        config["padded_size"] = self._padded
        return config

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"value_sums": np.zeros(self._padded, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: HadamardReports,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        """Fold reports into per-coefficient sums of the raw +/-1 values.

        The raw values are summed *before* debiasing so the sufficient
        statistic stays integral; :meth:`finalize` divides by ``2p - 1``
        once, which keeps sharded aggregation exactly order-independent.
        """
        self._check_accumulator(accumulator)
        if reports.padded_size != self._padded:
            raise ValueError(
                "reports were produced for a different transform length "
                f"({reports.padded_size} != {self._padded})"
            )
        accumulator.vectors["value_sums"] += self._kernels.hrr_value_sums(
            reports.indices, reports.values, self._padded
        )
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        debiased = accumulator.vectors["value_sums"] / (2.0 * self._p - 1.0)
        coefficients = debiased * (self._padded / n)
        return fwht(coefficients)[: self.domain_size] / self._padded

    # ------------------------------------------------------------------ #
    # aggregate simulation
    # ------------------------------------------------------------------ #
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        coefficients = self.simulate_coefficients(true_counts, rng=rng)
        estimates = fwht(coefficients) / self._padded
        return estimates[: self.domain_size]

    def simulate_coefficients(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Sample unbiased Hadamard coefficient estimates from a histogram.

        For every coefficient ``j`` the users splitting into the ``+1`` and
        ``-1`` camps are known exactly from the true transform; the number
        of users that sample ``j`` and the randomized-response flips are
        then drawn as Binomials.  Cross-coefficient correlations (each user
        samples exactly one coefficient) are ignored, which perturbs joint
        statistics only at order ``1/D`` -- the same simplification the
        paper makes when simulating OUE.
        """
        counts = self._validate_counts(true_counts)
        return self.simulate_signed_coefficients(counts, np.zeros_like(counts), rng=rng)

    def simulate_signed_coefficients(
        self,
        positive_counts: np.ndarray,
        negative_counts: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Aggregate simulation for *signed* one-hot inputs.

        ``positive_counts[v]`` users hold ``+e_v`` and ``negative_counts[v]``
        users hold ``-e_v`` (the HaarHRR protocol produces such populations,
        one per Haar level).  Returns unbiased estimates of the unnormalised
        Hadamard transform of the signed fraction vector
        ``(positive_counts - negative_counts) / N``.
        """
        rng = ensure_rng(rng)
        positive = self._validate_counts(positive_counts)
        negative = self._validate_counts(negative_counts)
        n = positive.sum() + negative.sum()
        if n <= 0:
            return np.zeros(self._padded)
        net = np.zeros(self._padded)
        net[: self.domain_size] = positive - negative
        # T_j = sum over users of (sign_i * H[v_i, j]).
        true_transform = fwht(net)
        plus_pool = np.round((n + true_transform) / 2.0).astype(np.int64)
        minus_pool = np.round((n - true_transform) / 2.0).astype(np.int64)
        plus_pool = np.clip(plus_pool, 0, None)
        minus_pool = np.clip(minus_pool, 0, None)

        sample_prob = 1.0 / self._padded
        chosen_plus = rng.binomial(plus_pool, sample_prob)
        chosen_minus = rng.binomial(minus_pool, sample_prob)
        # Among users whose true coefficient is +1, those kept report +1.
        kept_plus = rng.binomial(chosen_plus, self._p)
        kept_minus = rng.binomial(chosen_minus, self._p)
        observed_sum = (2 * kept_plus - chosen_plus).astype(np.float64) - (
            2 * kept_minus - chosen_minus
        ).astype(np.float64)
        debiased = observed_sum / (2.0 * self._p - 1.0)
        return debiased * (self._padded / n)

    def estimate_from_signed_counts(
        self,
        positive_counts: np.ndarray,
        negative_counts: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Aggregate simulation returning signed fraction estimates.

        Statistically equivalent to running :meth:`privatize_signed` on a
        population with the given signed composition and aggregating.
        """
        coefficients = self.simulate_signed_coefficients(
            positive_counts, negative_counts, rng=rng
        )
        estimates = fwht(coefficients) / self._padded
        return estimates[: self.domain_size]

    def variance_per_user(self) -> float:
        return standard_oracle_variance(self.epsilon)
