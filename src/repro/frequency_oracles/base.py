"""Abstract frequency-oracle interface (Section 3.2 of the paper).

A *frequency oracle* is the building block every range-query method rests
on: an epsilon-LDP protocol through which each user reports a randomized
view of a one-hot (or signed one-hot) vector, and from which the aggregator
can recover an unbiased estimate of the population's item frequencies.

All oracles in this package share:

* ``privatize(items, rng)``            -- user-side randomization, vectorised
  over users; returns oracle-specific report arrays.
* ``aggregate(reports, n_users)``      -- server-side aggregation and bias
  correction; returns estimated fractional frequencies of length ``D``.
* ``estimate(items, rng)``             -- convenience: privatize then
  aggregate.
* ``estimate_from_counts(counts, rng)``-- a statistically equivalent
  *aggregate simulation* that samples the aggregator's view directly from
  the true histogram.  This is the device the paper itself uses for OUE at
  population sizes of 2^26 and we provide it for every oracle.
* ``variance_per_user()`` / ``variance(n)`` -- the theoretical estimator
  variance ``psi_F(eps)`` and ``V_F = psi_F(eps) / N``.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

import numpy as np

from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain, PrivacyParams


class FrequencyOracle(abc.ABC):
    """Base class for epsilon-LDP frequency oracles over a domain of size ``D``."""

    #: Registry/handle name, e.g. ``"oue"``; set by subclasses.
    name: str = "abstract"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        self._domain = Domain(int(domain_size))
        self._privacy = PrivacyParams(float(epsilon))

    # ------------------------------------------------------------------ #
    # configuration accessors
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> Domain:
        """The discrete domain the oracle estimates frequencies over."""
        return self._domain

    @property
    def domain_size(self) -> int:
        """Number of items ``D``."""
        return self._domain.size

    @property
    def privacy(self) -> PrivacyParams:
        """Privacy parameter wrapper."""
        return self._privacy

    @property
    def epsilon(self) -> float:
        """The epsilon budget each report satisfies."""
        return self._privacy.epsilon

    # ------------------------------------------------------------------ #
    # protocol steps
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> Any:
        """Randomize one report per user.

        ``items`` is a 1-D integer array with one private value per user.
        The return type is oracle specific but always accepted by
        :meth:`aggregate`.
        """

    @abc.abstractmethod
    def aggregate(self, reports: Any, n_users: Optional[int] = None) -> np.ndarray:
        """Aggregate reports into unbiased fractional frequency estimates."""

    def estimate(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Run the full oracle on raw items and return frequency estimates."""
        items = self.domain.validate_items(np.asarray(items))
        reports = self.privatize(items, rng=ensure_rng(rng))
        return self.aggregate(reports, n_users=len(items))

    @abc.abstractmethod
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Sample the aggregator's estimate directly from the true histogram.

        The returned vector has the same distribution (up to negligible
        cross-item correlation terms that vanish as ``1/D``) as running
        :meth:`estimate` on a population realising ``true_counts``, but costs
        ``O(D)`` or ``O(D log D)`` work instead of ``O(N)``/``O(N D)``.
        """

    # ------------------------------------------------------------------ #
    # error characteristics
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def variance_per_user(self) -> float:
        """``psi_F(eps)``: estimator variance times the number of users."""

    def variance(self, n_users: int) -> float:
        """Per-item estimator variance ``V_F`` for a population of ``n_users``."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return self.variance_per_user() / float(n_users)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _validate_counts(self, true_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must be a 1-D array of length {self.domain_size}, "
                f"got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("true_counts must be non-negative")
        return counts

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(D={self.domain_size}, eps={self.epsilon:g})"


def standard_oracle_variance(epsilon: float) -> float:
    """The common per-user variance ``4 e^eps / (e^eps - 1)^2``.

    OUE, OLH and HRR all achieve this value (Section 3.2), which is why the
    paper can analyse every range-query construction in terms of a single
    ``V_F``.
    """
    e_eps = np.exp(epsilon)
    return float(4.0 * e_eps / (e_eps - 1.0) ** 2)
