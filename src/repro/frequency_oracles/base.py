"""Abstract frequency-oracle interface (Section 3.2 of the paper).

A *frequency oracle* is the building block every range-query method rests
on: an epsilon-LDP protocol through which each user reports a randomized
view of a one-hot (or signed one-hot) vector, and from which the aggregator
can recover an unbiased estimate of the population's item frequencies.

All oracles in this package share:

* ``privatize(items, rng)``            -- user-side randomization, vectorised
  over users; returns oracle-specific report arrays.
* ``aggregate(reports, n_users)``      -- server-side aggregation and bias
  correction; returns estimated fractional frequencies of length ``D``.
* ``estimate(items, rng)``             -- convenience: privatize then
  aggregate.
* ``estimate_from_counts(counts, rng)``-- a statistically equivalent
  *aggregate simulation* that samples the aggregator's view directly from
  the true histogram.  This is the device the paper itself uses for OUE at
  population sizes of 2^26 and we provide it for every oracle.
* ``variance_per_user()`` / ``variance(n)`` -- the theoretical estimator
  variance ``psi_F(eps)`` and ``V_F = psi_F(eps) / N``.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.kernels import KernelBackend, resolve_backend
from repro.core.rng import RngLike, ensure_rng
from repro.core.serialization import pack_blob
from repro.core.session import AccumulatorState, register_state_decoder
from repro.core.types import Domain, PrivacyParams


class OracleAccumulator(AccumulatorState):
    """Mergeable sufficient statistics of one frequency oracle.

    Every oracle reduces its reports to a handful of named *integer* sum
    vectors (report counts, bit sums, support counts, signed Hadamard
    sums) plus the number of contributing users.  Integer sums make
    ``merge`` exactly associative and commutative: aggregating a report
    stream in shards and merging in any order is bit-for-bit identical to
    a single-pass aggregation.  ``config`` pins the oracle parameters so
    that accumulators of differently configured oracles refuse to merge.
    """

    state_kind = "oracle"

    def __init__(
        self,
        oracle_kind: str,
        config: Mapping[str, Any],
        vectors: Mapping[str, np.ndarray],
        n_reports: int = 0,
    ) -> None:
        self.oracle_kind = str(oracle_kind)
        self.config = dict(config)
        self.vectors: Dict[str, np.ndarray] = {
            name: np.asarray(vector, dtype=np.int64) for name, vector in vectors.items()
        }
        self._n_reports = int(n_reports)

    @property
    def n_reports(self) -> int:
        return self._n_reports

    def add_reports(self, count: int) -> None:
        """Record ``count`` additional contributing users."""
        self._n_reports += int(count)

    def _check_compatible(self, other: "OracleAccumulator") -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if self.oracle_kind != other.oracle_kind or self.config != other.config:
            raise ValueError(
                "cannot merge accumulators of differently configured oracles: "
                f"{self.oracle_kind}/{self.config} != {other.oracle_kind}/{other.config}"
            )

    def merge(self, other: AccumulatorState) -> "OracleAccumulator":
        self._check_compatible(other)
        for name, vector in self.vectors.items():
            vector += other.vectors[name]
        self._n_reports += other._n_reports
        return self

    def to_bytes(self) -> bytes:
        header = {
            "state_kind": self.state_kind,
            "oracle_kind": self.oracle_kind,
            "config": self.config,
            "n_reports": self._n_reports,
        }
        return pack_blob(header, self.vectors)

    @classmethod
    def _decode(cls, header: dict, arrays: Dict[str, np.ndarray]) -> "OracleAccumulator":
        return cls(
            oracle_kind=header["oracle_kind"],
            config=header["config"],
            vectors=arrays,
            n_reports=int(header["n_reports"]),
        )


class ExactSumAccumulator(OracleAccumulator):
    """Order-independent sums of real-valued report batches (used by SHE).

    Floating-point addition is not associative, so a single running float
    sum would break the "sharding never changes the result" guarantee.
    This accumulator instead keeps the (vectorized) per-item column sum of
    every ingested batch and finalizes with :func:`math.fsum`, which
    returns the correctly rounded value of the *exact* sum of its inputs
    regardless of their order.  Report batches are the atomic unit of
    sharding, so any assignment of batches to servers, merged in any
    order, finalizes bit-identically -- and a single-batch aggregation
    reproduces the plain ``aggregate`` path exactly.  State grows by
    ``O(D)`` per ingested *batch* (not per user), so clients should
    upload batched rather than per-user reports when using SHE.
    """

    state_kind = "oracle-exact"

    def __init__(
        self,
        oracle_kind: str,
        config: Mapping[str, Any],
        size: int,
        partials: Optional[List[np.ndarray]] = None,
        n_reports: int = 0,
    ) -> None:
        super().__init__(oracle_kind, config, {}, n_reports=n_reports)
        self.size = int(size)
        self.partials: List[np.ndarray] = [
            np.asarray(partial, dtype=np.float64) for partial in (partials or [])
        ]

    def add_batch_sums(self, batch_sums: np.ndarray) -> None:
        """Record one batch's per-item column sums."""
        batch_sums = np.asarray(batch_sums, dtype=np.float64)
        if batch_sums.shape != (self.size,):
            raise ValueError(
                f"batch sums must have shape ({self.size},), got {batch_sums.shape}"
            )
        self.partials.append(batch_sums)

    def exact_means(self, n: int) -> np.ndarray:
        """Correctly rounded per-item total over all batches, divided by ``n``."""
        if not self.partials:
            return np.zeros(self.size)
        stacked = np.stack(self.partials)
        totals = np.array(
            [math.fsum(stacked[:, item].tolist()) for item in range(self.size)]
        )
        return totals / n

    def merge(self, other: AccumulatorState) -> "ExactSumAccumulator":
        self._check_compatible(other)
        if self.size != other.size:
            raise ValueError("cannot merge exact accumulators of different sizes")
        self.partials.extend(other.partials)
        self._n_reports += other._n_reports
        return self

    def to_bytes(self) -> bytes:
        header = {
            "state_kind": self.state_kind,
            "oracle_kind": self.oracle_kind,
            "config": self.config,
            "n_reports": self._n_reports,
            "size": self.size,
        }
        stacked = (
            np.stack(self.partials) if self.partials else np.zeros((0, self.size))
        )
        return pack_blob(header, {"partials": stacked})

    @classmethod
    def _decode(cls, header: dict, arrays: Dict[str, np.ndarray]) -> "ExactSumAccumulator":
        return cls(
            oracle_kind=header["oracle_kind"],
            config=header["config"],
            size=int(header["size"]),
            partials=list(arrays["partials"]),
            n_reports=int(header["n_reports"]),
        )


register_state_decoder(OracleAccumulator.state_kind, OracleAccumulator._decode)
register_state_decoder(ExactSumAccumulator.state_kind, ExactSumAccumulator._decode)


class FrequencyOracle(abc.ABC):
    """Base class for epsilon-LDP frequency oracles over a domain of size ``D``."""

    #: Registry/handle name, e.g. ``"oue"``; set by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        kernel_backend: Optional[object] = None,
    ) -> None:
        self._domain = Domain(int(domain_size))
        self._privacy = PrivacyParams(float(epsilon))
        # A pure execution knob (like OLH's aggregation_chunk): it selects
        # who runs the deterministic arithmetic, never what it computes,
        # so it is excluded from the accumulator compatibility config and
        # from protocol specs.  None consults REPRO_KERNEL_BACKEND.
        self._kernels = resolve_backend(kernel_backend)

    # ------------------------------------------------------------------ #
    # configuration accessors
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> Domain:
        """The discrete domain the oracle estimates frequencies over."""
        return self._domain

    @property
    def domain_size(self) -> int:
        """Number of items ``D``."""
        return self._domain.size

    @property
    def privacy(self) -> PrivacyParams:
        """Privacy parameter wrapper."""
        return self._privacy

    @property
    def epsilon(self) -> float:
        """The epsilon budget each report satisfies."""
        return self._privacy.epsilon

    @property
    def kernels(self) -> KernelBackend:
        """The resolved compute-kernel backend (see :mod:`repro.core.kernels`)."""
        return self._kernels

    @property
    def kernel_backend(self) -> str:
        """Name of the active kernel backend (``"numpy"`` or ``"numba"``)."""
        return self._kernels.name

    # ------------------------------------------------------------------ #
    # protocol steps
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> Any:
        """Randomize one report per user.

        ``items`` is a 1-D integer array with one private value per user.
        The return type is oracle specific but always accepted by
        :meth:`aggregate`.
        """

    @abc.abstractmethod
    def aggregate(self, reports: Any, n_users: Optional[int] = None) -> np.ndarray:
        """Aggregate reports into unbiased fractional frequency estimates."""

    def estimate(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Run the full oracle on raw items and return frequency estimates."""
        items = self.domain.validate_items(np.asarray(items))
        reports = self.privatize(items, rng=ensure_rng(rng))
        return self.aggregate(reports, n_users=len(items))

    @abc.abstractmethod
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Sample the aggregator's estimate directly from the true histogram.

        The returned vector has the same distribution (up to negligible
        cross-item correlation terms that vanish as ``1/D``) as running
        :meth:`estimate` on a population realising ``true_counts``, but costs
        ``O(D)`` or ``O(D log D)`` work instead of ``O(N)``/``O(N D)``.
        """

    # ------------------------------------------------------------------ #
    # streaming aggregation (sufficient statistics)
    # ------------------------------------------------------------------ #
    def _accumulator_config(self) -> Dict[str, Any]:
        """Configuration fingerprint guarding accumulator merges."""
        return {"domain_size": self.domain_size, "epsilon": self.epsilon}

    @abc.abstractmethod
    def make_accumulator(self) -> OracleAccumulator:
        """A fresh zero-report accumulator for this oracle configuration.

        Together with :meth:`accumulate` and :meth:`finalize` this is the
        out-of-core aggregation path: reports are reduced to fixed-size
        sufficient statistics as they arrive instead of being held in
        memory, and accumulators of shards merge exactly.
        """

    @abc.abstractmethod
    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: Any,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        """Fold a batch of reports into ``accumulator`` and return it."""

    @abc.abstractmethod
    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        """Unbiased frequency estimates from accumulated statistics."""

    def _check_accumulator(self, accumulator: OracleAccumulator) -> None:
        if not isinstance(accumulator, OracleAccumulator):
            raise ValueError(
                f"expected an OracleAccumulator, got {type(accumulator).__name__}"
            )
        if (
            accumulator.oracle_kind != self.name
            or accumulator.config != self._accumulator_config()
        ):
            raise ValueError(
                f"accumulator belongs to {accumulator.oracle_kind}/{accumulator.config}, "
                f"not {self.name}/{self._accumulator_config()}"
            )

    def _batch_size(self, reports: Any, n_users: Optional[int]) -> int:
        n = int(n_users) if n_users is not None else len(reports)
        if n < 0:
            raise ValueError(f"n_users must be non-negative, got {n}")
        return n

    def _require_finalizable(self, accumulator: OracleAccumulator) -> int:
        self._check_accumulator(accumulator)
        if accumulator.n_reports <= 0:
            raise ValueError("cannot aggregate zero reports")
        return accumulator.n_reports

    # ------------------------------------------------------------------ #
    # error characteristics
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def variance_per_user(self) -> float:
        """``psi_F(eps)``: estimator variance times the number of users."""

    def variance(self, n_users: int) -> float:
        """Per-item estimator variance ``V_F`` for a population of ``n_users``."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        return self.variance_per_user() / float(n_users)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _validate_counts(self, true_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must be a 1-D array of length {self.domain_size}, "
                f"got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("true_counts must be non-negative")
        return counts

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(D={self.domain_size}, eps={self.epsilon:g})"


def validate_unary_reports(reports: np.ndarray, domain_size: int) -> np.ndarray:
    """Shape-check one ``(N, D)`` unary report matrix and return it."""
    reports = np.asarray(reports)
    if reports.ndim != 2 or reports.shape[1] != domain_size:
        raise ValueError(
            f"reports must have shape (N, {domain_size}), got {reports.shape}"
        )
    return reports


def unary_bit_sums(reports: np.ndarray, domain_size: int) -> np.ndarray:
    """Validated per-item column sums of an ``(N, D)`` unary report matrix.

    The returned ``int64`` vector is the sufficient statistic shared by all
    unary-encoding oracles (OUE, SUE, THE): only bit totals matter, never
    the individual report rows.  This is the reference path; oracles call
    the equivalent ``unary_sums`` kernel of their resolved backend.
    """
    from repro.core.kernels.reference import unary_sums

    return unary_sums(validate_unary_reports(reports, domain_size))


def standard_oracle_variance(epsilon: float) -> float:
    """The common per-user variance ``4 e^eps / (e^eps - 1)^2``.

    OUE, OLH and HRR all achieve this value (Section 3.2), which is why the
    paper can analyse every range-query construction in terms of a single
    ``V_F``.
    """
    e_eps = np.exp(epsilon)
    return float(4.0 * e_eps / (e_eps - 1.0) ** 2)
