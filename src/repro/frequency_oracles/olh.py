"""Optimal Local Hashing (OLH) frequency oracle (Wang et al., 2017).

Each user samples a hash function ``H_i`` from a pairwise-independent family
mapping the domain ``[D]`` into ``g`` buckets (``g = e^eps + 1`` minimizes
the variance), hashes her item and perturbs the bucket index with
generalized randomized response over ``[g]``.  She reports the hash function
(here: its two integer parameters) and the perturbed bucket.

The aggregator computes, for every item ``x``, its *support*
``T[x] = #{users i : H_i(x) == reported bucket_i}`` and debiases it:
``theta_hat[x] = (T[x]/N - 1/g) / (p - 1/g)``.

OLH matches OUE's variance with only ``O(log D)``-bit reports, but decoding
is expensive (``O(N D)`` hash evaluations), which is exactly why the paper
only evaluates TreeOLH on the smallest domain.  We keep that characteristic
honest here: the aggregation is vectorised but intrinsically ``O(N D)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernels.hash_cache import default_hash_cache
from repro.core.kernels.reference import HASH_PRIME
from repro.core.rng import RngLike, ensure_rng
from repro.frequency_oracles.base import (
    FrequencyOracle,
    OracleAccumulator,
    standard_oracle_variance,
)

#: A Mersenne prime comfortably larger than any domain we hash from, small
#: enough that ``a * x`` never overflows an int64 (a < 2^31, x < 2^31).
_HASH_PRIME = HASH_PRIME


@dataclass
class LocalHashReports:
    """Reports collected from OLH users.

    Attributes
    ----------
    multipliers, offsets:
        Per-user parameters ``a`` and ``b`` of the hash
        ``H(x) = ((a * x + b) mod P) mod g``.
    buckets:
        The perturbed bucket index reported by each user.
    num_buckets:
        The hash range ``g``.
    """

    multipliers: np.ndarray
    offsets: np.ndarray
    buckets: np.ndarray
    num_buckets: int

    def __len__(self) -> int:
        return len(self.buckets)


class OptimalLocalHashing(FrequencyOracle):
    """OLH oracle with configurable hash range ``g`` (default ``e^eps + 1``)."""

    name = "olh"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        num_buckets: Optional[int] = None,
        aggregation_chunk: int = 4096,
        kernel_backend: Optional[object] = None,
    ) -> None:
        super().__init__(domain_size, epsilon, kernel_backend=kernel_backend)
        if num_buckets is None:
            num_buckets = max(2, int(round(self.privacy.e_eps)) + 1)
        if num_buckets < 2:
            raise ValueError(f"num_buckets must be at least 2, got {num_buckets}")
        self._g = int(num_buckets)
        self._p = self.privacy.e_eps / (self.privacy.e_eps + self._g - 1)
        self._q = 1.0 / self._g
        if int(aggregation_chunk) < 1:
            raise ValueError(
                f"aggregation_chunk must be >= 1, got {aggregation_chunk}"
            )
        self._chunk = int(aggregation_chunk)

    @property
    def num_buckets(self) -> int:
        """The hash range ``g``."""
        return self._g

    @property
    def aggregation_chunk(self) -> int:
        """Users decoded per chunk in the ``O(N D)`` aggregation loop.

        A pure execution knob (memory/speed trade-off): it never changes
        the decoded support counts, so it is excluded from the accumulator
        compatibility config and from protocol specs.
        """
        return self._chunk

    @property
    def keep_probability(self) -> float:
        """GRR keep probability over the hashed domain."""
        return self._p

    # ------------------------------------------------------------------ #
    # hashing
    # ------------------------------------------------------------------ #
    def _hash(self, multipliers: np.ndarray, offsets: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorised universal hash ``((a*x + b) mod P) mod g``.

        Arguments broadcast against each other, so this supports both
        "one item per user" (equal-length 1-D arrays) and "all items for a
        chunk of users" (column vs row vectors).
        """
        products = (
            multipliers.astype(np.int64) * items.astype(np.int64)
            + offsets.astype(np.int64)
        ) % _HASH_PRIME
        return (products % self._g).astype(np.int64)

    def _sample_hash_functions(self, n: int, rng: np.random.Generator):
        multipliers = rng.integers(1, _HASH_PRIME, size=n, dtype=np.int64)
        offsets = rng.integers(0, _HASH_PRIME, size=n, dtype=np.int64)
        return multipliers, offsets

    # ------------------------------------------------------------------ #
    # per-user protocol
    # ------------------------------------------------------------------ #
    def privatize(self, items: np.ndarray, rng: RngLike = None) -> LocalHashReports:
        rng = ensure_rng(rng)
        items = self.domain.validate_items(np.asarray(items))
        n = len(items)
        multipliers, offsets = self._sample_hash_functions(n, rng)
        keep = rng.random(n) < self._p
        noise = rng.integers(0, self._g - 1, size=n)
        # Fused hash + GRR perturbation over the g buckets; only the three
        # rng draws above touch the generator, so every backend produces
        # the same reports for the same seed.
        reported = self._kernels.olh_encode(
            multipliers, offsets, items, self._g, keep, noise
        )
        return LocalHashReports(
            multipliers=multipliers,
            offsets=offsets,
            buckets=reported,
            num_buckets=self._g,
        )

    def aggregate(
        self, reports: LocalHashReports, n_users: Optional[int] = None
    ) -> np.ndarray:
        accumulator = self.accumulate(self.make_accumulator(), reports, n_users=n_users)
        return self.finalize(accumulator)

    def _accumulator_config(self) -> dict:
        config = super()._accumulator_config()
        config["num_buckets"] = self._g
        return config

    def make_accumulator(self) -> OracleAccumulator:
        return OracleAccumulator(
            self.name,
            self._accumulator_config(),
            {"support": np.zeros(self.domain_size, dtype=np.int64)},
        )

    def accumulate(
        self,
        accumulator: OracleAccumulator,
        reports: LocalHashReports,
        n_users: Optional[int] = None,
    ) -> OracleAccumulator:
        self._check_accumulator(accumulator)
        if reports.num_buckets != self._g:
            raise ValueError(
                f"reports use g={reports.num_buckets}, oracle expects g={self._g}"
            )
        # Cast the report arrays to int64 once; the O(N * D) decode runs in
        # the resolved kernel backend (chunked numpy with a reused work
        # buffer, or a fused compiled loop).  The decoded support counts
        # are the (integer) sufficient statistic, so only O(D) state
        # survives the batch.  The decode is a pure function of the report
        # arrays plus (D, g), so a re-delivered batch -- WAL replay, chaos
        # re-ingest, repeated benchmark rounds -- reuses the cached support
        # vector bit-identically instead of paying O(N * D) again.
        multipliers = np.ascontiguousarray(reports.multipliers, dtype=np.int64)
        offsets = np.ascontiguousarray(reports.offsets, dtype=np.int64)
        buckets = np.ascontiguousarray(reports.buckets, dtype=np.int64)
        cache = default_hash_cache()
        key = None
        support = None
        if cache.enabled:
            key = cache.key(self.domain_size, self._g, multipliers, offsets, buckets)
            support = cache.get(key)
        if support is None:
            support = self._kernels.olh_support(
                multipliers, offsets, buckets, self.domain_size, self._g, self._chunk
            )
            if key is not None:
                support = cache.put(key, support)
        accumulator.vectors["support"] += support
        accumulator.add_reports(self._batch_size(reports, n_users))
        return accumulator

    def finalize(self, accumulator: OracleAccumulator) -> np.ndarray:
        n = self._require_finalizable(accumulator)
        support = accumulator.vectors["support"].astype(np.float64)
        return (support / n - self._q) / (self._p - self._q)

    # ------------------------------------------------------------------ #
    # aggregate simulation
    # ------------------------------------------------------------------ #
    def estimate_from_counts(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Binomial simulation of the support counts.

        An item's support receives a contribution with probability ``p``
        from each user truly holding it and with probability ``1/g`` from
        every other user (by pairwise independence of the hash family), so
        ``T[x] ~ Bino(n_x, p) + Bino(N - n_x, 1/g)``.
        """
        rng = ensure_rng(rng)
        counts = self._validate_counts(true_counts).astype(np.int64)
        n = int(counts.sum())
        if n <= 0:
            return np.zeros(self.domain_size)
        support = rng.binomial(counts, self._p) + rng.binomial(n - counts, self._q)
        return (support.astype(np.float64) / n - self._q) / (self._p - self._q)

    def variance_per_user(self) -> float:
        # With the optimal g = e^eps + 1 this equals the standard bound; for
        # other g we report the exact GRR-over-buckets variance.
        p, q = self._p, self._q
        exact = q * (1.0 - q) / (p - q) ** 2 + p * (1.0 - p) / (p - q) ** 2
        standard = standard_oracle_variance(self.epsilon)
        # The two coincide at the optimum; prefer the exact expression when
        # the caller overrode g.
        if abs(self._g - (round(self.privacy.e_eps) + 1)) < 1e-9:
            return standard
        return float(exact)
